//! The sharded serving engine: stream-affine worker pool + request routing.
//!
//! Streams are sharded by `stream_id % shards` onto persistent worker
//! threads, each owning its streams outright (no locks on the hot path) and
//! processing its inbox serially — which is exactly what preserves per-stream
//! access order, and with it the bit-identical-to-batch guarantee from
//! [`crate::stream`]. This generalizes the harness's atomic-cursor worker
//! pool from "grid cells pulled off a shared cursor" to "live streams pinned
//! to a shard": grid cells are finished work items, streams are long-lived
//! state, so affinity replaces work stealing.
//!
//! # The batched hot path
//!
//! Three layers amortize the per-access round trip:
//!
//! * **Burst-drained inboxes** — a worker blocks on its first message, then
//!   `try_recv`s the rest of the pending queue and processes the whole burst
//!   before replying. Within a contiguous run of access-shaped messages,
//!   records are grouped by stream (each stream's arrival order untouched)
//!   so one stream's duty-cycled frozen queries run back-to-back with warm
//!   weights and shared scratch. Reordering *across* streams inside such a
//!   run is unobservable — no reply depends on another stream's state — so
//!   the bit-identical-to-batch parity survives grouping.
//! * **`access_batch` frames** — [`Request::AccessBatch`] carries N records
//!   in one frame; the engine scatters them to their shards (one message per
//!   shard, not per record) and gathers the parts back into one reply.
//! * **Sticky connections** — a [`Requester`] owns long-lived reply channels
//!   reused across requests (no per-request `mpsc::channel` allocation), and
//!   a batch whose records all map to one shard is handed to that shard
//!   directly, skipping the scatter/gather bookkeeping entirely.
//!
//! The engine is transport-agnostic: [`ServeEngine::request`] takes a typed
//! [`Request`] and returns a typed [`Response`], so tests drive it in-process
//! over the same code path the Unix-socket server uses.

use std::collections::HashMap;
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::mpsc::{self, Receiver, RecvTimeoutError, Sender};
use std::sync::Mutex;
use std::thread::JoinHandle;
use std::time::{Duration, Instant};

use pathfinder_telemetry::{counter, histogram, Histogram, HistogramSnapshot, Snapshot};

use crate::protocol::{
    AccessRecord, DrainedStream, Request, Response, ServeStatus, StreamStatus, MAX_BATCH_RECORDS,
};
use crate::stream::{StreamSession, StreamTemplate};

/// Most messages a worker drains into one burst. Bounds how long the first
/// sender in a burst waits for its reply when the inbox is flooded.
const MAX_BURST: usize = 256;

/// How often a waiting requester rechecks its shard worker's liveness.
/// Workers reply to every message (even refused ones), so this only fires
/// after a worker panic.
const REPLY_POLL: Duration = Duration::from_millis(25);

/// What a shard reports for a daemon-wide `status`.
#[derive(Debug, Clone)]
struct ShardReport {
    /// Live streams on the shard.
    streams: u64,
    /// Accesses ingested on the shard, including already-drained streams.
    accesses: u64,
    /// Schedule entries produced on the shard, including drained streams.
    schedule_len: u64,
    /// The shard thread's ambient telemetry snapshot.
    telemetry: Snapshot,
}

/// One `access_batch` record routed to a shard: the reply slot it fills,
/// its stream, and the load itself.
type BatchItem = (u32, u64, AccessRecord);

/// A shard's share of an `access_batch` reply: `(slot, blocks)` pairs, or
/// the error that failed the whole frame.
type BatchPart = Result<Vec<(u32, Vec<u64>)>, String>;

/// Messages the engine sends its shard workers. Each request-shaped message
/// carries its own reply channel, so concurrent connection threads can wait
/// on their own replies without coordinating.
enum ShardMsg {
    Access {
        stream: u64,
        access: AccessRecord,
        reply: Sender<Response>,
    },
    AccessBatch {
        items: Vec<BatchItem>,
        reply: Sender<BatchPart>,
    },
    Predict {
        stream: u64,
        reply: Sender<Response>,
    },
    Train {
        stream: u64,
        accesses: Vec<AccessRecord>,
        reply: Sender<Response>,
    },
    StreamStatus {
        stream: u64,
        reply: Sender<Response>,
    },
    ShardStatus {
        reply: Sender<ShardReport>,
    },
    SetTemplate(Box<StreamTemplate>),
    DrainStream {
        stream: u64,
        reply: Sender<Response>,
    },
    DrainAll {
        reply: Sender<Vec<DrainedStream>>,
    },
    Stop,
}

struct ShardHandle {
    tx: Sender<ShardMsg>,
    join: Mutex<Option<JoinHandle<()>>>,
}

impl ShardHandle {
    /// Whether the worker thread has exited (panicked or stopped). A
    /// requester waiting on a reusable reply channel uses this to avoid
    /// blocking forever on a reply that can no longer come.
    fn finished(&self) -> bool {
        self.join
            .lock()
            .expect("join lock")
            .as_ref()
            .is_none_or(|j| j.is_finished())
    }
}

/// Engine-boundary latency histogram names, one per verb, indexed by
/// [`verb_index`]. Surfaced in the daemon-wide `status` telemetry JSON so
/// round-trip vs inference cost is observable without a bench run.
const VERB_LATENCY: [&str; 7] = [
    "serve.latency.access",
    "serve.latency.access_batch",
    "serve.latency.predict",
    "serve.latency.train",
    "serve.latency.status",
    "serve.latency.configure",
    "serve.latency.drain",
];

fn verb_index(req: &Request) -> usize {
    match req {
        Request::Access { .. } => 0,
        Request::AccessBatch { .. } => 1,
        Request::Predict { .. } => 2,
        Request::Train { .. } => 3,
        Request::Status { .. } => 4,
        Request::Configure(_) => 5,
        Request::Drain { .. } => 6,
    }
}

/// The daemon core: a bounded pool of stream-affine shard workers.
pub struct ServeEngine {
    shards: Vec<ShardHandle>,
    template: Mutex<StreamTemplate>,
    draining: AtomicBool,
    /// Request latency at the engine boundary, one histogram per verb
    /// (nanoseconds), merged into daemon-wide `status`.
    latency: Mutex<[Histogram; VERB_LATENCY.len()]>,
}

impl std::fmt::Debug for ServeEngine {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("ServeEngine")
            .field("shards", &self.shards.len())
            .field("draining", &self.draining.load(Ordering::Relaxed))
            .finish()
    }
}

impl ServeEngine {
    /// Starts an engine with `shards` workers and the default template.
    pub fn new(shards: usize) -> Self {
        ServeEngine::with_template(StreamTemplate::default(), shards)
    }

    /// Starts an engine with `shards` workers built from `template`.
    /// `shards` is clamped to at least 1.
    pub fn with_template(template: StreamTemplate, shards: usize) -> Self {
        let n = shards.max(1);
        let shards = (0..n as u32)
            .map(|shard_id| {
                let (tx, rx) = mpsc::channel();
                let tmpl = template.clone();
                let join = std::thread::Builder::new()
                    .name(format!("pf-serve-shard-{shard_id}"))
                    .spawn(move || shard_worker(shard_id, tmpl, rx))
                    .expect("spawn shard worker");
                ShardHandle {
                    tx,
                    join: Mutex::new(Some(join)),
                }
            })
            .collect();
        ServeEngine {
            shards,
            template: Mutex::new(template),
            draining: AtomicBool::new(false),
            latency: Mutex::new(std::array::from_fn(|_| Histogram::new())),
        }
    }

    /// Number of shard workers.
    pub fn shards(&self) -> u32 {
        self.shards.len() as u32
    }

    /// Whether a full drain has completed: the daemon no longer serves and
    /// its transport loop should exit.
    pub fn is_draining(&self) -> bool {
        self.draining.load(Ordering::SeqCst)
    }

    fn shard_index(&self, stream: u64) -> usize {
        (stream % self.shards.len() as u64) as usize
    }

    /// Creates a [`Requester`]: the per-connection handle whose reply
    /// channels live as long as the connection, so the per-request
    /// `mpsc::channel` allocation disappears from the hot path. Each
    /// transport connection (and each bench client thread) should hold one.
    pub fn requester(&self) -> Requester<'_> {
        let (reply_tx, reply_rx) = mpsc::channel();
        let (part_tx, part_rx) = mpsc::channel();
        Requester {
            engine: self,
            reply_tx,
            reply_rx,
            part_tx,
            part_rx,
        }
    }

    /// Serves one typed request. This is the single entry point shared by
    /// the Unix-socket transport and in-process tests. One-shot convenience:
    /// callers on a hot path should hold a [`Requester`] instead, which
    /// reuses its reply channels across requests.
    pub fn request(&self, req: Request) -> Response {
        self.requester().request(req)
    }

    fn record_latency(&self, verb: usize, elapsed: Duration) {
        let nanos = u64::try_from(elapsed.as_nanos()).unwrap_or(u64::MAX);
        self.latency.lock().expect("latency lock")[verb].record(nanos);
    }

    /// Applies a `configure` delta to the template and pushes the new
    /// template to every shard.
    fn configure(&self, delta: crate::protocol::ConfigDelta) -> Response {
        let mut template = self.template.lock().expect("template lock");
        match template.apply(&delta) {
            Ok(()) => {
                for shard in &self.shards {
                    // A closed inbox just means that shard already
                    // stopped; configure is best-effort then.
                    let _ = shard
                        .tx
                        .send(ShardMsg::SetTemplate(Box::new(template.clone())));
                }
                Response::Ok
            }
            Err(e) => Response::Error(format!("invalid configuration: {e}")),
        }
    }

    /// Daemon-wide `status`: fan out to every shard, merge the reports,
    /// and fold in the engine-boundary latency histograms.
    fn daemon_status(&self) -> Response {
        let mut receivers = Vec::with_capacity(self.shards.len());
        for shard in &self.shards {
            let (tx, rx) = mpsc::channel();
            if shard.tx.send(ShardMsg::ShardStatus { reply: tx }).is_ok() {
                receivers.push(rx);
            }
        }
        let mut streams = 0u64;
        let mut accesses = 0u64;
        let mut schedule_len = 0u64;
        let mut telemetry = Snapshot::default();
        for rx in receivers {
            if let Ok(report) = rx.recv() {
                streams += report.streams;
                accesses += report.accesses;
                schedule_len += report.schedule_len;
                telemetry.merge(&report.telemetry);
            }
        }
        {
            let latency = self.latency.lock().expect("latency lock");
            for (name, h) in VERB_LATENCY.iter().zip(latency.iter()) {
                if h.count() > 0 {
                    telemetry
                        .histograms
                        .insert((*name).to_string(), HistogramSnapshot::from_histogram(h));
                }
            }
        }
        Response::Status(ServeStatus {
            shards: self.shards(),
            streams,
            accesses,
            schedule_len,
            telemetry_json: telemetry.to_json(),
        })
    }

    /// Full drain: every stream on every shard is finished (timed replay +
    /// final stats), the workers stop, and the engine flags itself as
    /// draining so the transport loop shuts down.
    fn drain_all(&self) -> Response {
        self.draining.store(true, Ordering::SeqCst);
        let mut receivers = Vec::with_capacity(self.shards.len());
        for shard in &self.shards {
            let (tx, rx) = mpsc::channel();
            if shard.tx.send(ShardMsg::DrainAll { reply: tx }).is_ok() {
                receivers.push(rx);
            }
        }
        let mut drained: Vec<DrainedStream> = Vec::new();
        for rx in receivers {
            if let Ok(mut streams) = rx.recv() {
                drained.append(&mut streams);
            }
        }
        drained.sort_by_key(|s| s.stream);
        for shard in &self.shards {
            let _ = shard.tx.send(ShardMsg::Stop);
            if let Some(join) = shard.join.lock().expect("join lock").take() {
                let _ = join.join();
            }
        }
        Response::Drained(drained)
    }
}

impl Drop for ServeEngine {
    fn drop(&mut self) {
        // Stop workers that a full drain never reached (abandoned engine).
        for shard in &self.shards {
            let _ = shard.tx.send(ShardMsg::Stop);
        }
        for shard in &self.shards {
            if let Some(join) = shard.join.lock().expect("join lock").take() {
                let _ = join.join();
            }
        }
    }
}

/// A sticky per-connection (or per-thread) handle on the engine.
///
/// Owns one long-lived reply channel per reply shape, reused across every
/// request it serves — the per-request `mpsc::channel` allocation the
/// original `roundtrip` paid is gone. Because the requester keeps its own
/// sender half alive, a dead worker can no longer unblock it by
/// disconnecting the channel; workers therefore actively reply to every
/// message they refuse, and the requester polls worker liveness as a
/// panic backstop.
pub struct Requester<'a> {
    engine: &'a ServeEngine,
    reply_tx: Sender<Response>,
    reply_rx: Receiver<Response>,
    part_tx: Sender<BatchPart>,
    part_rx: Receiver<BatchPart>,
}

impl std::fmt::Debug for Requester<'_> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Requester")
            .field("engine", self.engine)
            .finish()
    }
}

impl Requester<'_> {
    /// Serves one typed request, recording its engine-boundary latency.
    pub fn request(&mut self, req: Request) -> Response {
        let verb = verb_index(&req);
        let start = Instant::now();
        let resp = self.dispatch(req);
        self.engine.record_latency(verb, start.elapsed());
        resp
    }

    fn dispatch(&mut self, req: Request) -> Response {
        match req {
            Request::Access { stream, access } => {
                let msg = ShardMsg::Access {
                    stream,
                    access,
                    reply: self.reply_tx.clone(),
                };
                self.roundtrip(stream, msg)
            }
            Request::AccessBatch { accesses } => self.access_batch(accesses),
            Request::Predict { stream } => {
                let msg = ShardMsg::Predict {
                    stream,
                    reply: self.reply_tx.clone(),
                };
                self.roundtrip(stream, msg)
            }
            Request::Train { stream, accesses } => {
                let msg = ShardMsg::Train {
                    stream,
                    accesses,
                    reply: self.reply_tx.clone(),
                };
                self.roundtrip(stream, msg)
            }
            Request::Status {
                stream: Some(stream),
            } => {
                let msg = ShardMsg::StreamStatus {
                    stream,
                    reply: self.reply_tx.clone(),
                };
                self.roundtrip(stream, msg)
            }
            Request::Status { stream: None } => self.engine.daemon_status(),
            Request::Configure(delta) => self.engine.configure(delta),
            Request::Drain {
                stream: Some(stream),
            } => {
                let msg = ShardMsg::DrainStream {
                    stream,
                    reply: self.reply_tx.clone(),
                };
                self.roundtrip(stream, msg)
            }
            Request::Drain { stream: None } => self.engine.drain_all(),
        }
    }

    /// Sends a per-stream message to its shard and waits on the reusable
    /// reply channel.
    fn roundtrip(&mut self, stream: u64, msg: ShardMsg) -> Response {
        let shard = self.engine.shard_index(stream);
        if self.engine.shards[shard].tx.send(msg).is_err() {
            return Response::Error("daemon is draining".into());
        }
        loop {
            match self.reply_rx.recv_timeout(REPLY_POLL) {
                Ok(resp) => return resp,
                Err(RecvTimeoutError::Timeout) => {
                    if self.engine.shards[shard].finished() {
                        // The worker may have replied just before exiting.
                        return self
                            .reply_rx
                            .try_recv()
                            .unwrap_or_else(|_| Response::Error("shard worker exited".into()));
                    }
                }
                Err(RecvTimeoutError::Disconnected) => {
                    // Unreachable while `self.reply_tx` is alive; defensive.
                    return Response::Error("shard worker exited".into());
                }
            }
        }
    }

    /// Scatter an `access_batch` frame to its shards (one message per
    /// shard), gather the parts, reassemble the reply in request order.
    /// When every record maps to one shard — the sticky-connection case —
    /// the whole frame goes to that shard directly.
    fn access_batch(&mut self, accesses: Vec<(u64, AccessRecord)>) -> Response {
        let n = accesses.len();
        if n == 0 {
            return Response::PrefetchBatch(Vec::new());
        }
        if n > MAX_BATCH_RECORDS {
            // The wire decoder already rejects these; this guards
            // in-process callers.
            return Response::Error(format!(
                "access_batch of {n} records exceeds the {MAX_BATCH_RECORDS}-record cap"
            ));
        }
        let nshards = self.engine.shards.len() as u64;
        let first_shard = (accesses[0].0 % nshards) as usize;
        let sticky = accesses
            .iter()
            .all(|(stream, _)| (stream % nshards) as usize == first_shard);

        let mut sent: Vec<usize> = Vec::new();
        let mut send_failed = false;
        if sticky {
            let items: Vec<BatchItem> = accesses
                .into_iter()
                .enumerate()
                .map(|(slot, (stream, rec))| (slot as u32, stream, rec))
                .collect();
            let msg = ShardMsg::AccessBatch {
                items,
                reply: self.part_tx.clone(),
            };
            if self.engine.shards[first_shard].tx.send(msg).is_ok() {
                sent.push(first_shard);
            } else {
                send_failed = true;
            }
        } else {
            let mut per_shard: Vec<Vec<BatchItem>> = vec![Vec::new(); nshards as usize];
            for (slot, (stream, rec)) in accesses.into_iter().enumerate() {
                per_shard[(stream % nshards) as usize].push((slot as u32, stream, rec));
            }
            for (idx, items) in per_shard.into_iter().enumerate() {
                if items.is_empty() {
                    continue;
                }
                let msg = ShardMsg::AccessBatch {
                    items,
                    reply: self.part_tx.clone(),
                };
                if self.engine.shards[idx].tx.send(msg).is_err() {
                    send_failed = true;
                    break;
                }
                sent.push(idx);
            }
        }

        let mut out: Vec<Vec<u64>> = vec![Vec::new(); n];
        let collected = self.collect_parts(&sent, &mut out);
        match collected {
            Ok(()) if !send_failed => Response::PrefetchBatch(out),
            Ok(()) => Response::Error("daemon is draining".into()),
            Err(e) => {
                // A part may never arrive (worker panic) or may arrive
                // late; start the next request from fresh channels so no
                // stale part can leak into it.
                let (part_tx, part_rx) = mpsc::channel();
                self.part_tx = part_tx;
                self.part_rx = part_rx;
                Response::Error(e)
            }
        }
    }

    /// Waits for one part per shard in `sent`, scattering block vectors
    /// into their reply slots. Keeps collecting after a failed part so the
    /// reusable channel ends the frame empty.
    fn collect_parts(&mut self, sent: &[usize], out: &mut [Vec<u64>]) -> Result<(), String> {
        let mut failure: Option<String> = None;
        for _ in 0..sent.len() {
            let part = loop {
                match self.part_rx.recv_timeout(REPLY_POLL) {
                    Ok(part) => break part,
                    Err(RecvTimeoutError::Timeout) => {
                        if sent.iter().any(|&idx| self.engine.shards[idx].finished()) {
                            // A worker died mid-frame; grab whatever
                            // arrived, then give up on the rest.
                            match self.part_rx.try_recv() {
                                Ok(part) => break part,
                                Err(_) => {
                                    return Err(
                                        failure.unwrap_or_else(|| "shard worker exited".into())
                                    )
                                }
                            }
                        }
                    }
                    Err(RecvTimeoutError::Disconnected) => {
                        return Err(failure.unwrap_or_else(|| "shard worker exited".into()));
                    }
                }
            };
            match part {
                Ok(slots) => {
                    for (slot, blocks) in slots {
                        if let Some(o) = out.get_mut(slot as usize) {
                            *o = blocks;
                        }
                    }
                }
                Err(e) => failure = Some(e),
            }
        }
        match failure {
            Some(e) => Err(e),
            None => Ok(()),
        }
    }
}

/// A unit of access-shaped work inside one burst: either a singleton
/// `access` or a shard's share of an `access_batch` frame. Collected into
/// contiguous runs so [`flush_run`] can group records by stream.
enum AccessWork {
    Single {
        stream: u64,
        access: AccessRecord,
        reply: Sender<Response>,
    },
    Batch {
        items: Vec<BatchItem>,
        reply: Sender<BatchPart>,
    },
}

/// One borrow point for lazy stream creation, shared by access + train.
fn session_mut<'a>(
    streams: &'a mut HashMap<u64, StreamSession>,
    stream: u64,
    template: &StreamTemplate,
) -> Result<&'a mut StreamSession, String> {
    use std::collections::hash_map::Entry;
    match streams.entry(stream) {
        Entry::Occupied(e) => Ok(e.into_mut()),
        Entry::Vacant(e) => {
            counter!("serve.streams_created", 1);
            Ok(e.insert(StreamSession::new(stream, template)?))
        }
    }
}

/// One grouped entry of a flushed run: the stream, its records in arrival
/// order, and each record's origin as `(work index, reply slot)`.
type RunGroup = (u64, Vec<AccessRecord>, Vec<(usize, u32)>);

/// Processes one contiguous run of access-shaped messages: groups records
/// by stream (first-appearance order, per-stream arrival order untouched),
/// runs each stream's records back-to-back through its session — the warm
/// path for duty-cycled frozen inference — then sends every deferred reply.
fn flush_run(
    run: &mut Vec<AccessWork>,
    streams: &mut HashMap<u64, StreamSession>,
    template: &StreamTemplate,
    total_accesses: &mut u64,
    total_schedule: &mut u64,
) {
    if run.is_empty() {
        return;
    }
    let mut batch_frames = 0u64;
    let mut batch_records = 0u64;
    // stream -> position in `groups`.
    let mut index: HashMap<u64, usize> = HashMap::new();
    let mut groups: Vec<RunGroup> = Vec::new();
    {
        let mut push = |stream: u64, rec: AccessRecord, origin: (usize, u32)| {
            let at = *index.entry(stream).or_insert_with(|| {
                groups.push((stream, Vec::new(), Vec::new()));
                groups.len() - 1
            });
            groups[at].1.push(rec);
            groups[at].2.push(origin);
        };
        for (wi, work) in run.iter().enumerate() {
            match work {
                AccessWork::Single { stream, access, .. } => push(*stream, *access, (wi, 0)),
                AccessWork::Batch { items, .. } => {
                    batch_frames += 1;
                    batch_records += items.len() as u64;
                    for &(slot, stream, rec) in items {
                        push(stream, rec, (wi, slot));
                    }
                }
            }
        }
    }
    if batch_frames > 0 {
        counter!("serve.batch.frames", batch_frames);
        counter!("serve.batch.accesses", batch_records);
    }

    let mut results: Vec<Vec<(u32, Vec<u64>)>> = run
        .iter()
        .map(|w| match w {
            AccessWork::Single { .. } => Vec::with_capacity(1),
            AccessWork::Batch { items, .. } => Vec::with_capacity(items.len()),
        })
        .collect();
    let mut failures: Vec<Option<String>> = vec![None; run.len()];

    for (stream, recs, origins) in groups {
        match session_mut(streams, stream, template) {
            Ok(session) => {
                let (blocks, grouped_inferences) = session.access_run(&recs);
                if recs.len() > 1 {
                    counter!("serve.batch.inference_grouped", grouped_inferences);
                }
                let issued: u64 = blocks.iter().map(|b| b.len() as u64).sum();
                counter!("serve.accesses", recs.len() as u64);
                counter!("serve.prefetches", issued);
                *total_accesses += recs.len() as u64;
                *total_schedule += issued;
                for ((wi, slot), bl) in origins.into_iter().zip(blocks) {
                    results[wi].push((slot, bl.into_iter().map(|b| b.0).collect()));
                }
            }
            Err(e) => {
                for (wi, _) in origins {
                    failures[wi].get_or_insert_with(|| e.clone());
                }
            }
        }
    }

    for ((work, result), failure) in run.drain(..).zip(results).zip(failures) {
        match work {
            AccessWork::Single { reply, .. } => {
                let resp = match failure {
                    Some(e) => Response::Error(e),
                    None => Response::Prefetches(
                        result
                            .into_iter()
                            .next()
                            .map(|(_, b)| b)
                            .unwrap_or_default(),
                    ),
                };
                let _ = reply.send(resp);
            }
            AccessWork::Batch { reply, .. } => {
                let part = match failure {
                    Some(e) => Err(e),
                    None => Ok(result),
                };
                let _ = reply.send(part);
            }
        }
    }
}

/// Replies to a message a stopping worker will not serve. Requesters hold
/// reusable reply channels, so a dropped message would leave them waiting
/// forever — every refusal must be an explicit reply.
fn refuse(msg: ShardMsg) {
    let draining = "daemon is draining";
    match msg {
        ShardMsg::Access { reply, .. }
        | ShardMsg::Predict { reply, .. }
        | ShardMsg::Train { reply, .. }
        | ShardMsg::StreamStatus { reply, .. }
        | ShardMsg::DrainStream { reply, .. } => {
            let _ = reply.send(Response::Error(draining.into()));
        }
        ShardMsg::AccessBatch { reply, .. } => {
            let _ = reply.send(Err(draining.into()));
        }
        // Status/drain fan-outs use per-call channels; dropping the sender
        // disconnects them, which their receivers already treat as "shard
        // gone". Template pushes and stops carry no reply.
        ShardMsg::ShardStatus { .. }
        | ShardMsg::DrainAll { .. }
        | ShardMsg::SetTemplate(_)
        | ShardMsg::Stop => {}
    }
}

/// The shard worker loop: owns this shard's streams and drains its inbox in
/// bursts — block on the first message, `try_recv` the rest, process the
/// whole burst (grouping contiguous access-shaped runs by stream), then
/// reply. Per-stream order is preserved throughout, so the
/// bit-identical-to-batch guarantee is untouched.
fn shard_worker(shard_id: u32, mut template: StreamTemplate, rx: Receiver<ShardMsg>) {
    let mut streams: HashMap<u64, StreamSession> = HashMap::new();
    // Totals survive per-stream drains so daemon-wide `status` keeps
    // counting work already finished.
    let mut total_accesses = 0u64;
    let mut total_schedule = 0u64;
    let mut burst: Vec<ShardMsg> = Vec::with_capacity(MAX_BURST);
    let mut run: Vec<AccessWork> = Vec::new();

    'serve: loop {
        match rx.recv() {
            Ok(msg) => burst.push(msg),
            Err(_) => break 'serve,
        }
        while burst.len() < MAX_BURST {
            match rx.try_recv() {
                Ok(msg) => burst.push(msg),
                Err(_) => break,
            }
        }
        histogram!("serve.shard.burst", burst.len() as u64);

        let mut stopping = false;
        for msg in burst.drain(..) {
            if stopping {
                refuse(msg);
                continue;
            }
            match msg {
                ShardMsg::Access {
                    stream,
                    access,
                    reply,
                } => run.push(AccessWork::Single {
                    stream,
                    access,
                    reply,
                }),
                ShardMsg::AccessBatch { items, reply } => {
                    run.push(AccessWork::Batch { items, reply })
                }
                other => {
                    // A non-access verb ends the contiguous access run:
                    // flush it first so message order is preserved.
                    flush_run(
                        &mut run,
                        &mut streams,
                        &template,
                        &mut total_accesses,
                        &mut total_schedule,
                    );
                    match other {
                        ShardMsg::Stop => stopping = true,
                        ShardMsg::Predict { stream, reply } => {
                            let resp = match streams.get(&stream) {
                                Some(session) => Response::Prefetches(
                                    session.last_prediction().iter().map(|b| b.0).collect(),
                                ),
                                None => Response::Error(format!("unknown stream {stream}")),
                            };
                            let _ = reply.send(resp);
                        }
                        ShardMsg::Train {
                            stream,
                            accesses,
                            reply,
                        } => {
                            let resp = match session_mut(&mut streams, stream, &template) {
                                Ok(session) => {
                                    let n = accesses.len() as u64;
                                    let (blocks, _) = session.access_run(&accesses);
                                    let prefetched: u64 =
                                        blocks.iter().map(|b| b.len() as u64).sum();
                                    counter!("serve.accesses", n);
                                    counter!("serve.prefetches", prefetched);
                                    total_accesses += n;
                                    total_schedule += prefetched;
                                    Response::Trained {
                                        accesses: n,
                                        prefetched,
                                    }
                                }
                                Err(e) => Response::Error(e),
                            };
                            let _ = reply.send(resp);
                        }
                        ShardMsg::StreamStatus { stream, reply } => {
                            let resp = match streams.get(&stream) {
                                Some(session) => Response::Stream(StreamStatus {
                                    stream,
                                    shard: shard_id,
                                    accesses: session.accesses(),
                                    schedule_len: session.schedule_len(),
                                    last_prediction: session
                                        .last_prediction()
                                        .iter()
                                        .map(|b| b.0)
                                        .collect(),
                                    pf: session.stats(),
                                }),
                                None => Response::Error(format!("unknown stream {stream}")),
                            };
                            let _ = reply.send(resp);
                        }
                        ShardMsg::ShardStatus { reply } => {
                            let _ = reply.send(ShardReport {
                                streams: streams.len() as u64,
                                accesses: total_accesses,
                                schedule_len: total_schedule,
                                telemetry: pathfinder_telemetry::snapshot(),
                            });
                        }
                        ShardMsg::SetTemplate(new_template) => {
                            template = *new_template;
                        }
                        ShardMsg::DrainStream { stream, reply } => {
                            let resp = match streams.remove(&stream) {
                                Some(session) => {
                                    counter!("serve.drains", 1);
                                    Response::Drained(vec![session.drain()])
                                }
                                None => Response::Error(format!("unknown stream {stream}")),
                            };
                            let _ = reply.send(resp);
                        }
                        ShardMsg::DrainAll { reply } => {
                            let mut ids: Vec<u64> = streams.keys().copied().collect();
                            ids.sort_unstable();
                            let drained: Vec<DrainedStream> = ids
                                .into_iter()
                                .filter_map(|id| streams.remove(&id))
                                .map(|session| {
                                    counter!("serve.drains", 1);
                                    session.drain()
                                })
                                .collect();
                            let _ = reply.send(drained);
                        }
                        ShardMsg::Access { .. } | ShardMsg::AccessBatch { .. } => unreachable!(),
                    }
                }
            }
        }
        flush_run(
            &mut run,
            &mut streams,
            &template,
            &mut total_accesses,
            &mut total_schedule,
        );
        if stopping {
            // Refuse whatever is still queued before dropping the inbox so
            // no requester is left waiting on a reusable channel.
            while let Ok(msg) = rx.try_recv() {
                refuse(msg);
            }
            break 'serve;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn rec(i: u64) -> AccessRecord {
        AccessRecord {
            instr_id: i * 2,
            pc: 0x400,
            vaddr: i * 64,
            depends_on_prev: false,
        }
    }

    #[test]
    fn verbs_round_trip_through_the_pool() {
        let engine = ServeEngine::new(3);
        assert_eq!(engine.shards(), 3);

        // Unknown stream: predict/status/drain all error.
        assert!(matches!(
            engine.request(Request::Predict { stream: 7 }),
            Response::Error(_)
        ));
        assert!(matches!(
            engine.request(Request::Status { stream: Some(7) }),
            Response::Error(_)
        ));
        assert!(matches!(
            engine.request(Request::Drain { stream: Some(7) }),
            Response::Error(_)
        ));

        // Accesses create the stream lazily and echo the issued blocks.
        for i in 0..50 {
            let resp = engine.request(Request::Access {
                stream: 7,
                access: rec(i),
            });
            let Response::Prefetches(blocks) = resp else {
                panic!("access reply was {resp:?}");
            };
            let Response::Prefetches(predicted) = engine.request(Request::Predict { stream: 7 })
            else {
                panic!("predict failed")
            };
            assert_eq!(blocks, predicted, "predict reads back the last access");
        }

        let Response::Stream(status) = engine.request(Request::Status { stream: Some(7) }) else {
            panic!("stream status failed")
        };
        assert_eq!(status.accesses, 50);
        assert_eq!(status.shard, 7 % 3);
        assert_eq!(status.pf.accesses, 50);

        // Train on a second stream; daemon-wide status sums both.
        let Response::Trained { accesses, .. } = engine.request(Request::Train {
            stream: 8,
            accesses: (0..30).map(rec).collect(),
        }) else {
            panic!("train failed")
        };
        assert_eq!(accesses, 30);
        let Response::Status(daemon) = engine.request(Request::Status { stream: None }) else {
            panic!("daemon status failed")
        };
        assert_eq!(daemon.streams, 2);
        assert_eq!(daemon.accesses, 80);
        assert_eq!(daemon.shards, 3);

        // Per-stream drain removes the stream; totals persist.
        let Response::Drained(drained) = engine.request(Request::Drain { stream: Some(7) }) else {
            panic!("drain failed")
        };
        assert_eq!(drained.len(), 1);
        assert_eq!(drained[0].stream, 7);
        assert_eq!(drained[0].pf.accesses, 50);
        assert!(matches!(
            engine.request(Request::Status { stream: Some(7) }),
            Response::Error(_)
        ));
        let Response::Status(daemon) = engine.request(Request::Status { stream: None }) else {
            panic!("daemon status failed")
        };
        assert_eq!(daemon.streams, 1);
        assert_eq!(daemon.accesses, 80, "drained work still counted");

        // Full drain returns the remaining stream and shuts the pool down.
        let Response::Drained(rest) = engine.request(Request::Drain { stream: None }) else {
            panic!("full drain failed")
        };
        assert_eq!(rest.len(), 1);
        assert_eq!(rest[0].stream, 8);
        assert!(engine.is_draining());
        assert!(matches!(
            engine.request(Request::Predict { stream: 8 }),
            Response::Error(_)
        ));
    }

    #[test]
    fn configure_applies_to_new_streams_only() {
        let engine = ServeEngine::new(2);
        engine.request(Request::Access {
            stream: 1,
            access: rec(0),
        });
        // Invalid delta is rejected without changing anything.
        assert!(matches!(
            engine.request(Request::Configure(crate::protocol::ConfigDelta {
                degree: Some(0),
                ..Default::default()
            })),
            Response::Error(_)
        ));
        // Valid delta: new streams see it.
        assert!(matches!(
            engine.request(Request::Configure(crate::protocol::ConfigDelta {
                duty: Some((250, 5000)),
                ..Default::default()
            })),
            Response::Ok
        ));
        engine.request(Request::Access {
            stream: 2,
            access: rec(0),
        });
        let Response::Status(daemon) = engine.request(Request::Status { stream: None }) else {
            panic!("status failed")
        };
        assert_eq!(daemon.streams, 2);
    }

    #[test]
    fn access_batch_matches_singleton_accesses_slot_for_slot() {
        // Two engines, same template: one fed a cross-stream batch frame,
        // one fed the equivalent singleton sequence. Replies must agree
        // slot for slot, and predict must read back each stream's last
        // record.
        let batch_engine = ServeEngine::new(2);
        let single_engine = ServeEngine::new(2);
        let records: Vec<(u64, AccessRecord)> = (0..40u64).map(|i| (i % 3, rec(i / 3))).collect();

        let mut requester = batch_engine.requester();
        let Response::PrefetchBatch(batched) = requester.request(Request::AccessBatch {
            accesses: records.clone(),
        }) else {
            panic!("access_batch failed")
        };
        assert_eq!(batched.len(), records.len());

        for (i, (stream, access)) in records.iter().enumerate() {
            let Response::Prefetches(blocks) = single_engine.request(Request::Access {
                stream: *stream,
                access: *access,
            }) else {
                panic!("singleton access failed")
            };
            assert_eq!(batched[i], blocks, "slot {i} diverged");
        }

        // Per-stream predict agrees across both engines.
        for stream in 0..3u64 {
            let a = batch_engine.request(Request::Predict { stream });
            let b = single_engine.request(Request::Predict { stream });
            assert_eq!(a, b);
        }

        // Empty batches are a no-op, not an error.
        assert_eq!(
            batch_engine.request(Request::AccessBatch {
                accesses: Vec::new()
            }),
            Response::PrefetchBatch(Vec::new())
        );
    }

    #[test]
    fn requester_reuses_channels_across_verbs_and_survives_drain() {
        let engine = ServeEngine::new(2);
        let mut requester = engine.requester();
        for i in 0..20 {
            let resp = requester.request(Request::Access {
                stream: 4,
                access: rec(i),
            });
            assert!(matches!(resp, Response::Prefetches(_)));
        }
        // Sticky single-shard batch (stream 4 only) takes the direct path.
        let resp = requester.request(Request::AccessBatch {
            accesses: (20..30).map(|i| (4, rec(i))).collect(),
        });
        let Response::PrefetchBatch(parts) = resp else {
            panic!("sticky batch failed")
        };
        assert_eq!(parts.len(), 10);

        let Response::Stream(status) = requester.request(Request::Status { stream: Some(4) })
        else {
            panic!("status failed")
        };
        assert_eq!(status.accesses, 30);

        // Full drain through the same requester, then further requests on
        // it fail cleanly instead of hanging on the reusable channel.
        let Response::Drained(drained) = requester.request(Request::Drain { stream: None }) else {
            panic!("drain failed")
        };
        assert_eq!(drained.len(), 1);
        assert!(matches!(
            requester.request(Request::Access {
                stream: 4,
                access: rec(99),
            }),
            Response::Error(_)
        ));
        assert!(matches!(
            requester.request(Request::AccessBatch {
                accesses: vec![(4, rec(100))],
            }),
            Response::Error(_)
        ));
    }

    #[test]
    fn status_surfaces_engine_boundary_latency_histograms() {
        let engine = ServeEngine::new(1);
        let mut requester = engine.requester();
        requester.request(Request::Access {
            stream: 0,
            access: rec(0),
        });
        requester.request(Request::AccessBatch {
            accesses: vec![(0, rec(1)), (0, rec(2))],
        });
        let Response::Status(status) = requester.request(Request::Status { stream: None }) else {
            panic!("status failed")
        };
        assert!(
            status.telemetry_json.contains("serve.latency.access"),
            "status JSON missing access latency: {}",
            status.telemetry_json
        );
        assert!(
            status.telemetry_json.contains("serve.latency.access_batch"),
            "status JSON missing batch latency: {}",
            status.telemetry_json
        );
    }

    #[test]
    #[cfg_attr(
        not(feature = "telemetry"),
        ignore = "snn.frozen.batch counters need the telemetry feature (on in workspace builds)"
    )]
    fn status_surfaces_frozen_batch_counters() {
        // Duty-cycle learning off after 50 accesses so the burst-drained
        // batch's tail runs as one frozen segment, whose cache-missing
        // queries dispatch through `present_frozen_batch` — visible in the
        // merged status JSON as the snn.frozen.batch family, alongside the
        // serve.batch.* counters.
        let engine = ServeEngine::new(1);
        let mut requester = engine.requester();
        assert!(matches!(
            requester.request(Request::Configure(crate::protocol::ConfigDelta {
                duty: Some((50, 5000)),
                ..Default::default()
            })),
            Response::Ok
        ));
        // Varied strides across a few PCs/pages: enough fresh pixel
        // matrices that the frozen segment has several compute lanes.
        let accesses: Vec<(u64, AccessRecord)> = (0..300u64)
            .map(|i| {
                (
                    0,
                    AccessRecord {
                        instr_id: i * 3,
                        pc: 0x400 + (i % 4) * 8,
                        vaddr: i * 64 + if i % 17 == 0 { 4096 } else { 0 },
                        depends_on_prev: i % 5 == 0,
                    },
                )
            })
            .collect();
        requester.request(Request::AccessBatch { accesses });
        let Response::Status(status) = requester.request(Request::Status { stream: None }) else {
            panic!("status failed")
        };
        for key in [
            "snn.frozen.batch.calls",
            "snn.frozen.batch.queries",
            "snn.frozen.batch.lanes",
        ] {
            assert!(
                status.telemetry_json.contains(key),
                "status JSON missing {key}: {}",
                status.telemetry_json
            );
        }
    }

    #[test]
    fn oversized_in_process_batch_is_refused() {
        let engine = ServeEngine::new(1);
        let accesses = vec![(0u64, rec(0)); MAX_BATCH_RECORDS + 1];
        assert!(matches!(
            engine.request(Request::AccessBatch { accesses }),
            Response::Error(_)
        ));
    }
}
