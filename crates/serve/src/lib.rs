//! Prefetch-as-a-service: a long-running daemon serving many concurrent
//! access streams, each backed by its own PATHFINDER prefetcher.
//!
//! The batch workflow (`repro run`) replays one trace to completion and
//! exits; this crate turns the same learner into a service. Clients open
//! streams implicitly by naming a 64-bit stream id, push `(pc, addr)` demand
//! loads one at a time (`access`), many per frame with per-record replies
//! (`access_batch`), or in aggregate-reply frames (`train`), read
//! predictions back (`predict`), inspect counters and per-shard telemetry
//! (`status`), retune the template for future streams (`configure`), and
//! finish streams (`drain`) — receiving the full prefetch schedule, the
//! timed-replay [`pathfinder_sim::SimReport`], and the prefetcher's final
//! counters.
//!
//! The serving hot path is batched at every layer (see [`engine`]):
//! `access_batch` amortizes framing, shard workers drain their inboxes in
//! bursts and group contiguous access runs by stream so duty-cycled frozen
//! inference runs back-to-back with warm weights, and each connection holds
//! a sticky [`Requester`] whose reply channels are reused across requests.
//!
//! # Architecture
//!
//! ```text
//!  clients ──frames──▶ UnixListener ──▶ ServeEngine ──ShardMsg──▶ shard 0 ─▶ streams 0,S,2S…
//!           (wire.rs)   (socket.rs)      (engine.rs)   (mpsc)      shard 1 ─▶ streams 1,S+1…
//!                                                                  …
//! ```
//!
//! Streams are sharded by `stream_id % shards` onto persistent workers,
//! each processing its inbox serially — per-stream order is preserved by
//! construction, with no locks on the hot path. The engine is
//! transport-agnostic: tests call [`ServeEngine::request`] in-process; the
//! daemon wraps the same method in length-prefixed frames on a Unix socket.
//!
//! # Parity discipline
//!
//! The non-negotiable invariant, pinned by tests in this crate and enforced
//! in CI by the `service-smoke` job: **any single stream driven through the
//! daemon produces bit-identical prefetch schedules, replay reports, and
//! stats to a batch run of the same trace.** [`StreamSession::access`]
//! replicates `generate_prefetches`' per-access loop exactly, and PATHFINDER
//! learns online (`prepare` is a no-op), so incremental serving is the same
//! computation as batch generation. Per-stream prefetcher seeds derive as
//! `template.seed ^ stream_id`, so a batch comparator can reconstruct any
//! stream from `(template, id)`.

#![warn(missing_docs)]

pub mod engine;
pub mod protocol;
pub mod socket;
pub mod stream;
pub mod wire;

pub use engine::{Requester, ServeEngine};
pub use protocol::{
    AccessRecord, ConfigDelta, DrainedStream, Request, Response, ServeStatus, StreamStatus,
    MAX_BATCH_RECORDS,
};
pub use socket::{serve_unix, UnixClient};
pub use stream::{StreamSession, StreamTemplate};
