//! Per-stream serving state: one PATHFINDER prefetcher, its accumulated
//! trace, and the prefetch schedule it has produced so far.
//!
//! The parity discipline lives here. A [`StreamSession`] feeds each access
//! through exactly the per-access loop of
//! [`pathfinder_prefetch::generate_prefetches`] — same dedup, same
//! `max_degree` truncation, same `PrefetchRequest` construction — and its
//! drain replays the accumulated `(trace, schedule)` pair through the same
//! [`Simulator`] the batch path uses. `Prefetcher::prepare` is a no-op for
//! PATHFINDER (it learns online), so serving accesses one at a time is the
//! same computation as handing the whole trace over at once: schedules and
//! reports are bit-identical across the service boundary.

use pathfinder_core::{PathfinderConfig, PathfinderPrefetcher, PathfinderStats};
use pathfinder_prefetch::Prefetcher;
use pathfinder_sim::{
    Block, MemoryAccess, PrefetchRequest, SimConfig, SimReport, Simulator, Trace,
};

use crate::protocol::{AccessRecord, ConfigDelta, DrainedStream};

/// The immutable template new streams are built from: a PATHFINDER
/// configuration (whose seed each stream XORs its id into) and the simulator
/// configuration used at drain time.
#[derive(Debug, Clone, Default)]
pub struct StreamTemplate {
    /// PATHFINDER configuration; `seed` is the template seed.
    pub config: PathfinderConfig,
    /// Simulator configuration for the drain-time timed replay.
    pub sim: SimConfig,
}

impl StreamTemplate {
    /// The per-stream configuration: the template with `seed ^ stream_id`,
    /// mirroring the harness convention so a batch comparator can
    /// reconstruct any stream's prefetcher from `(template, stream_id)`.
    pub fn config_for_stream(&self, stream: u64) -> PathfinderConfig {
        let mut cfg = self.config;
        cfg.seed ^= stream;
        cfg
    }

    /// Applies a `configure` delta, validating the result.
    ///
    /// # Errors
    ///
    /// Returns the validation message when the delta produces an invalid
    /// configuration; the template is left unchanged.
    pub fn apply(&mut self, delta: &ConfigDelta) -> Result<(), String> {
        let mut cfg = self.config;
        if let Some(degree) = delta.degree {
            cfg.degree = degree as usize;
        }
        if let Some(seed) = delta.seed {
            cfg.seed = seed;
        }
        if let Some((on, epoch)) = delta.duty {
            cfg.stdp_duty = pathfinder_core::StdpDutyCycle {
                on_accesses: on,
                epoch_accesses: epoch,
            };
        }
        if let Some(entries) = delta.snn_cache_entries {
            cfg.snn_cache_entries = entries as usize;
        }
        cfg.validate()?;
        self.config = cfg;
        Ok(())
    }
}

/// One live stream: its prefetcher, accumulated trace, and schedule.
#[derive(Debug)]
pub struct StreamSession {
    stream: u64,
    prefetcher: PathfinderPrefetcher,
    trace: Trace,
    schedule: Vec<PrefetchRequest>,
    last_prediction: Vec<Block>,
    max_degree: usize,
    sim: SimConfig,
}

impl StreamSession {
    /// Creates a session for `stream` from the template.
    ///
    /// # Errors
    ///
    /// Propagates configuration validation failures from the prefetcher
    /// constructor.
    pub fn new(stream: u64, template: &StreamTemplate) -> Result<Self, String> {
        let config = template.config_for_stream(stream);
        let max_degree = template.sim.max_prefetch_degree;
        let prefetcher = PathfinderPrefetcher::new(config)?;
        Ok(StreamSession {
            stream,
            prefetcher,
            trace: Trace::new(),
            schedule: Vec::new(),
            last_prediction: Vec::new(),
            max_degree,
            sim: template.sim,
        })
    }

    /// Stream id.
    pub fn stream(&self) -> u64 {
        self.stream
    }

    /// Demand loads ingested so far.
    pub fn accesses(&self) -> u64 {
        self.trace.len() as u64
    }

    /// Schedule entries accumulated so far.
    pub fn schedule_len(&self) -> u64 {
        self.schedule.len() as u64
    }

    /// Blocks predicted on the most recent access (read-only `predict`).
    pub fn last_prediction(&self) -> &[Block] {
        &self.last_prediction
    }

    /// The prefetcher's operational counters.
    pub fn stats(&self) -> PathfinderStats {
        *self.prefetcher.stats()
    }

    /// Converts a wire record into the simulator's access form.
    fn to_access(rec: AccessRecord) -> MemoryAccess {
        let access = MemoryAccess::new(rec.instr_id, rec.pc, rec.vaddr);
        if rec.depends_on_prev {
            access.dependent()
        } else {
            access
        }
    }

    /// The per-access tail of `generate_prefetches`: dedup, `max_degree`
    /// truncation, schedule/trace/last-prediction bookkeeping.
    fn issue(&mut self, access: MemoryAccess, blocks: Vec<Block>) -> Vec<Block> {
        let mut seen: Vec<Block> = Vec::with_capacity(self.max_degree);
        for b in blocks {
            if seen.len() >= self.max_degree {
                break;
            }
            if !seen.contains(&b) {
                seen.push(b);
                self.schedule.push(PrefetchRequest::new(access.instr_id, b));
            }
        }
        self.trace.push(access);
        self.last_prediction = seen.clone();
        seen
    }

    /// Ingests one demand load and returns the prefetch blocks issued for
    /// it — the exact per-access body of `generate_prefetches`, applied
    /// incrementally.
    pub fn access(&mut self, rec: AccessRecord) -> Vec<Block> {
        let access = Self::to_access(rec);
        let blocks = self.prefetcher.on_access(&access);
        self.issue(access, blocks)
    }

    /// Ingests a run of demand loads back-to-back and returns the blocks
    /// issued for each, in input order, plus the number of frozen SNN
    /// inferences the run executed (`snn_cache_misses` delta — every
    /// duty-cycled-off query that missed the memoization cache counts,
    /// whether it ran as a batched lane or inline).
    ///
    /// The run routes through
    /// [`PathfinderPrefetcher::on_access_run`], which collects each
    /// contiguous duty-cycled-off stretch's cache-missing pixel matrices up
    /// front and presents them as lockstep lanes of one
    /// `present_frozen_batch` call — so the inference work PR 9's burst
    /// drain already groups per stream now shares one pass over the weight
    /// matrix. The result is bit-identical to calling
    /// [`StreamSession::access`] once per record: batching changes when the
    /// frozen kernel runs, not what it computes.
    pub fn access_run(&mut self, recs: &[AccessRecord]) -> (Vec<Vec<Block>>, u64) {
        let misses_before = self.prefetcher.stats().snn_cache_misses;
        let accesses: Vec<MemoryAccess> = recs.iter().map(|&rec| Self::to_access(rec)).collect();
        let per_access = self.prefetcher.on_access_run(&accesses);
        let out = accesses
            .iter()
            .zip(per_access)
            .map(|(&access, blocks)| self.issue(access, blocks))
            .collect();
        let grouped = self.prefetcher.stats().snn_cache_misses - misses_before;
        (out, grouped)
    }

    /// Finishes the stream: runs the timed replay of the accumulated trace
    /// against the accumulated schedule (the same computation the batch
    /// path performs) and packages the result for the `drain` reply.
    pub fn drain(self) -> DrainedStream {
        let report = if self.trace.is_empty() {
            SimReport::default()
        } else {
            Simulator::new(self.sim).run(&self.trace, &self.schedule)
        };
        DrainedStream {
            stream: self.stream,
            schedule: self
                .schedule
                .iter()
                .map(|r| (r.trigger_instr_id, r.block.0))
                .collect(),
            report,
            pf: *self.prefetcher.stats(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use pathfinder_prefetch::generate_prefetches;

    fn synthetic(loads: u64) -> Vec<AccessRecord> {
        // A strided stream with a periodic irregular hop: enough structure
        // for PATHFINDER to learn from, enough noise to exercise wrong
        // predictions too.
        (0..loads)
            .map(|i| AccessRecord {
                instr_id: i * 3,
                pc: 0x400 + (i % 4) * 8,
                vaddr: i * 64 + if i % 17 == 0 { 4096 } else { 0 },
                depends_on_prev: i % 5 == 0,
            })
            .collect()
    }

    #[test]
    fn incremental_access_matches_generate_prefetches() {
        let template = StreamTemplate::default();
        let records = synthetic(400);

        let mut session = StreamSession::new(9, &template).unwrap();
        for &r in &records {
            session.access(r);
        }
        let drained = session.drain();

        // Batch path: same per-stream config, same trace, one call.
        let mut batch = PathfinderPrefetcher::new(template.config_for_stream(9)).unwrap();
        let trace: Trace = records
            .iter()
            .map(|r| {
                let a = MemoryAccess::new(r.instr_id, r.pc, r.vaddr);
                if r.depends_on_prev {
                    a.dependent()
                } else {
                    a
                }
            })
            .collect();
        let schedule = generate_prefetches(&mut batch, &trace, template.sim.max_prefetch_degree);
        let report = Simulator::new(template.sim).run(&trace, &schedule);

        let batch_pairs: Vec<(u64, u64)> = schedule
            .iter()
            .map(|r| (r.trigger_instr_id, r.block.0))
            .collect();
        assert_eq!(
            drained.schedule, batch_pairs,
            "schedules must be bit-identical"
        );
        assert_eq!(drained.report, report, "reports must be bit-identical");
        assert_eq!(&drained.pf, batch.stats(), "stats must be bit-identical");
    }

    #[test]
    fn access_run_matches_one_at_a_time_and_counts_frozen_inferences() {
        // Duty-cycled template so the run actually exercises the frozen
        // path whose grouped inferences access_run reports.
        let mut template = StreamTemplate::default();
        template.config.stdp_duty = pathfinder_core::StdpDutyCycle::first_n_of_5000(100);
        let records = synthetic(600);

        let mut one_at_a_time = StreamSession::new(3, &template).unwrap();
        let singles: Vec<Vec<Block>> = records.iter().map(|&r| one_at_a_time.access(r)).collect();

        let mut grouped = StreamSession::new(3, &template).unwrap();
        let mut runs = Vec::new();
        let mut frozen = 0u64;
        for chunk in records.chunks(37) {
            let (blocks, grouped_inferences) = grouped.access_run(chunk);
            runs.extend(blocks);
            frozen += grouped_inferences;
        }
        assert_eq!(singles, runs, "grouping must not change any prediction");
        assert_eq!(
            frozen,
            grouped.stats().snn_cache_misses,
            "every cache-missing frozen query is reported as grouped work"
        );
        // access_run now routes frozen segments through the batched
        // `present_frozen_batch` kernel; the drain must stay bit-identical
        // down to every stats counter, not just the schedule.
        assert_eq!(
            one_at_a_time.stats(),
            grouped.stats(),
            "batched inference must leave all counters invariant"
        );
        let (single_drain, grouped_drain) = (one_at_a_time.drain(), grouped.drain());
        assert_eq!(single_drain.schedule, grouped_drain.schedule);
        assert_eq!(single_drain.report, grouped_drain.report);
        assert_eq!(single_drain.pf, grouped_drain.pf);
    }

    #[test]
    fn empty_stream_drains_to_default_report() {
        let session = StreamSession::new(1, &StreamTemplate::default()).unwrap();
        let drained = session.drain();
        assert_eq!(drained.report, SimReport::default());
        assert!(drained.schedule.is_empty());
    }

    #[test]
    fn configure_delta_rejects_invalid_and_applies_valid() {
        let mut template = StreamTemplate::default();
        let bad = ConfigDelta {
            degree: Some(0),
            ..ConfigDelta::default()
        };
        assert!(template.apply(&bad).is_err());
        assert_eq!(template.config.degree, PathfinderConfig::default().degree);

        let good = ConfigDelta {
            seed: Some(0x1234),
            duty: Some((250, 5000)),
            ..ConfigDelta::default()
        };
        template.apply(&good).unwrap();
        assert_eq!(template.config.seed, 0x1234);
        assert_eq!(template.config.stdp_duty.on_accesses, 250);
        // Per-stream seed derivation XORs the id on top.
        assert_eq!(template.config_for_stream(5).seed, 0x1234 ^ 5);
    }
}
