//! Unix-socket transport: the daemon's accept loop and a blocking client.
//!
//! Connections are one thread each, serving length-prefixed
//! [`Request`]/[`Response`] frames until the peer disconnects. The accept
//! loop polls a nonblocking listener so it can notice a completed full drain
//! (`Drain { stream: None }`) and exit cleanly, removing the socket file.

use std::io;
use std::io::Read;
use std::os::unix::net::{UnixListener, UnixStream};
use std::path::{Path, PathBuf};
use std::sync::Arc;
use std::time::Duration;

use crate::engine::ServeEngine;
use crate::protocol::{Request, Response};
use crate::wire::{read_frame, write_frame, MAX_FRAME_LEN};

/// How often the accept loop checks for shutdown while idle.
const ACCEPT_POLL: Duration = Duration::from_millis(10);

/// Serves `engine` on a Unix socket at `path` until a full drain completes.
///
/// A stale socket file at `path` is removed before binding (daemons killed
/// hard leave one behind); the file is removed again on clean exit. Returns
/// once the engine reports draining and every connection thread has
/// finished.
///
/// # Errors
///
/// Propagates bind failures and fatal accept errors.
pub fn serve_unix(engine: Arc<ServeEngine>, path: &Path) -> io::Result<()> {
    if path.exists() {
        std::fs::remove_file(path)?;
    }
    let listener = UnixListener::bind(path)?;
    listener.set_nonblocking(true)?;
    let mut connections: Vec<std::thread::JoinHandle<()>> = Vec::new();

    while !engine.is_draining() {
        match listener.accept() {
            Ok((stream, _addr)) => {
                let engine = Arc::clone(&engine);
                connections.push(std::thread::spawn(move || {
                    // Peer errors end that connection, not the daemon.
                    let _ = serve_connection(&engine, stream);
                }));
            }
            Err(e) if e.kind() == io::ErrorKind::WouldBlock => {
                std::thread::sleep(ACCEPT_POLL);
            }
            Err(e) if e.kind() == io::ErrorKind::Interrupted => {}
            Err(e) => {
                let _ = std::fs::remove_file(path);
                return Err(e);
            }
        }
        connections.retain(|c| !c.is_finished());
    }
    for c in connections {
        let _ = c.join();
    }
    let _ = std::fs::remove_file(path);
    Ok(())
}

/// Serves one connection: frames in, frames out, until clean EOF or drain.
///
/// The connection holds one sticky [`ServeEngine::requester`] for its whole
/// lifetime, so every frame it serves reuses the same reply channels — no
/// per-request allocation — and single-shard `access_batch` frames take the
/// direct path to their shard.
///
/// The reader polls with [`ACCEPT_POLL`] while idle so a connection a peer
/// holds open without sending (or the drain requester's own connection)
/// cannot block the daemon's post-drain join forever.
fn serve_connection(engine: &ServeEngine, stream: UnixStream) -> io::Result<()> {
    let mut reader = stream.try_clone()?;
    let mut writer = stream;
    let mut requester = engine.requester();
    reader.set_read_timeout(Some(ACCEPT_POLL))?;
    while let Some(payload) = read_frame_or_drain(engine, &mut reader)? {
        let response = match Request::decode(&payload) {
            Ok(request) => requester.request(request),
            Err(e) => Response::Error(e.to_string()),
        };
        write_frame(&mut writer, &response.encode())?;
    }
    Ok(())
}

/// Reads one frame from a timeout-armed stream, returning `Ok(None)` on
/// clean EOF or when the engine starts draining while the connection is
/// idle (no header byte in flight).
///
/// The 4-byte header is accumulated across timeouts so a poll expiring
/// mid-header loses nothing; once the header is complete the stream
/// switches to blocking for the payload (the peer has committed to a
/// frame), then re-arms the timeout for the next idle wait.
fn read_frame_or_drain(
    engine: &ServeEngine,
    stream: &mut UnixStream,
) -> io::Result<Option<Vec<u8>>> {
    let mut header = [0u8; 4];
    let mut got = 0usize;
    while got < header.len() {
        match stream.read(&mut header[got..]) {
            Ok(0) if got == 0 => return Ok(None),
            Ok(0) => {
                return Err(io::Error::new(
                    io::ErrorKind::UnexpectedEof,
                    "connection closed mid-frame-header",
                ))
            }
            Ok(n) => got += n,
            Err(e)
                if matches!(
                    e.kind(),
                    io::ErrorKind::WouldBlock | io::ErrorKind::TimedOut
                ) =>
            {
                if got == 0 && engine.is_draining() {
                    return Ok(None);
                }
            }
            Err(e) if e.kind() == io::ErrorKind::Interrupted => {}
            Err(e) => return Err(e),
        }
    }
    let len = u32::from_le_bytes(header) as usize;
    if len > MAX_FRAME_LEN {
        return Err(io::Error::new(
            io::ErrorKind::InvalidData,
            format!("frame of {len} bytes exceeds the {MAX_FRAME_LEN}-byte cap"),
        ));
    }
    stream.set_read_timeout(None)?;
    let mut payload = vec![0u8; len];
    stream.read_exact(&mut payload)?;
    stream.set_read_timeout(Some(ACCEPT_POLL))?;
    Ok(Some(payload))
}

/// A blocking client for the daemon's Unix socket.
#[derive(Debug)]
pub struct UnixClient {
    stream: UnixStream,
    path: PathBuf,
}

impl UnixClient {
    /// Connects to the daemon at `path`, retrying for up to `timeout` while
    /// the socket does not exist or refuses connections (the daemon may
    /// still be starting — the CI smoke launches daemon and clients
    /// back-to-back).
    ///
    /// # Errors
    ///
    /// Returns the last connection error once `timeout` elapses.
    pub fn connect_with_retry(path: &Path, timeout: Duration) -> io::Result<Self> {
        let deadline = std::time::Instant::now() + timeout;
        loop {
            match UnixStream::connect(path) {
                Ok(stream) => {
                    return Ok(UnixClient {
                        stream,
                        path: path.to_path_buf(),
                    })
                }
                Err(e) => {
                    if std::time::Instant::now() >= deadline {
                        return Err(e);
                    }
                    std::thread::sleep(ACCEPT_POLL);
                }
            }
        }
    }

    /// Connects without retries.
    ///
    /// # Errors
    ///
    /// Propagates the connection error.
    pub fn connect(path: &Path) -> io::Result<Self> {
        UnixClient::connect_with_retry(path, Duration::ZERO)
    }

    /// The socket path this client is connected to.
    pub fn path(&self) -> &Path {
        &self.path
    }

    /// Sends one request and waits for its reply.
    ///
    /// # Errors
    ///
    /// Propagates transport failures; a daemon that closed the connection
    /// mid-exchange surfaces as [`io::ErrorKind::UnexpectedEof`].
    pub fn request(&mut self, request: &Request) -> io::Result<Response> {
        write_frame(&mut self.stream, &request.encode())?;
        match read_frame(&mut self.stream)? {
            Some(payload) => Ok(Response::decode(&payload)?),
            None => Err(io::Error::new(
                io::ErrorKind::UnexpectedEof,
                "daemon closed the connection before replying",
            )),
        }
    }
}
