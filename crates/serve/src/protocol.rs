//! The typed request/response protocol the daemon answers.
//!
//! Seven verbs, mirroring the daemon + typed-IPC-dispatch shape the ROADMAP
//! points at:
//!
//! * [`Request::Access`] — observe one demand load on a stream; the reply
//!   carries the prefetch blocks issued for exactly that trigger.
//! * [`Request::AccessBatch`] — observe N demand loads across any mix of
//!   streams in one frame; the reply carries N block vectors, one per
//!   record in request order. This amortizes framing and the shard
//!   round trip over the whole batch while producing the same per-access
//!   answers `access` would (records for the same stream are applied in
//!   frame order).
//! * [`Request::Predict`] — read back the blocks predicted on the stream's
//!   most recent access, without advancing any state (idempotent).
//! * [`Request::Train`] — bulk-ingest a batch of accesses through the same
//!   per-access path as `access` (warmup/training ingestion at frame
//!   granularity); only aggregate counts come back.
//! * [`Request::Status`] — per-stream counters, or daemon-wide aggregates
//!   plus the merged per-shard telemetry snapshot as JSON.
//! * [`Request::Configure`] — adjust the template new streams are built
//!   from; existing streams are immutable (that is what keeps them
//!   bit-identical to batch runs).
//! * [`Request::Drain`] — finish one stream (timed replay of its
//!   accumulated trace + schedule, returning the report, stats, and full
//!   schedule) or, with no stream, drain every stream and shut the daemon
//!   down.
//!
//! Every message round-trips through the [`crate::wire`] codec; integers
//! never pass through floating point, so the parity discipline ("the same
//! bits on both sides of the service boundary") holds on the wire too.

use pathfinder_core::PathfinderStats;
use pathfinder_sim::SimReport;

use crate::wire::{Dec, Enc, WireError};

/// One demand load, exactly as the simulator's `MemoryAccess` carries it.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct AccessRecord {
    /// Dynamic instruction index (retire order) of the load.
    pub instr_id: u64,
    /// Program counter of the load instruction.
    pub pc: u64,
    /// Virtual address being loaded.
    pub vaddr: u64,
    /// Pointer-chasing dependence on the previous load.
    pub depends_on_prev: bool,
}

impl AccessRecord {
    fn encode(&self, e: &mut Enc) {
        e.u64(self.instr_id);
        e.u64(self.pc);
        e.u64(self.vaddr);
        e.bool(self.depends_on_prev);
    }

    fn decode(d: &mut Dec<'_>) -> Result<Self, WireError> {
        Ok(AccessRecord {
            instr_id: d.u64()?,
            pc: d.u64()?,
            vaddr: d.u64()?,
            depends_on_prev: d.bool()?,
        })
    }
}

/// Partial update to the stream template (`configure` verb). `None` fields
/// keep their current value. Applies to streams created *after* the call;
/// live streams never change configuration mid-flight.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct ConfigDelta {
    /// PATHFINDER prefetch degree (and the per-access schedule cap).
    pub degree: Option<u64>,
    /// Template seed; each stream still XORs its id on top.
    pub seed: Option<u64>,
    /// STDP duty cycle as `(on_accesses, epoch_accesses)`.
    pub duty: Option<(u64, u64)>,
    /// Frozen-inference prediction-cache capacity (0 disables).
    pub snn_cache_entries: Option<u64>,
}

impl ConfigDelta {
    fn encode(&self, e: &mut Enc) {
        e.opt_u64(self.degree);
        e.opt_u64(self.seed);
        match self.duty {
            Some((on, epoch)) => {
                e.u8(1);
                e.u64(on);
                e.u64(epoch);
            }
            None => e.u8(0),
        }
        e.opt_u64(self.snn_cache_entries);
    }

    fn decode(d: &mut Dec<'_>) -> Result<Self, WireError> {
        let degree = d.opt_u64()?;
        let seed = d.opt_u64()?;
        let duty = match d.u8()? {
            0 => None,
            1 => Some((d.u64()?, d.u64()?)),
            other => return Err(WireError(format!("invalid duty tag {other}"))),
        };
        let snn_cache_entries = d.opt_u64()?;
        Ok(ConfigDelta {
            degree,
            seed,
            duty,
            snn_cache_entries,
        })
    }
}

/// Upper bound on records in one `access_batch` frame. At 25 wire bytes per
/// record the cap keeps the largest batch frame (~1.6 MiB) comfortably under
/// [`crate::wire::MAX_FRAME_LEN`], and it is enforced at decode time so a
/// hostile header cannot reserve unbounded memory.
pub const MAX_BATCH_RECORDS: usize = 1 << 16;

/// A client request. Streams are named by caller-chosen 64-bit ids and
/// created lazily on their first `access`/`access_batch`/`train`.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Request {
    /// Observe one demand load on `stream`.
    Access {
        /// Stream id.
        stream: u64,
        /// The load.
        access: AccessRecord,
    },
    /// Observe up to [`MAX_BATCH_RECORDS`] demand loads, each tagged with
    /// its stream, in one frame. The reply is
    /// [`Response::PrefetchBatch`] with one block vector per record, in
    /// request order.
    AccessBatch {
        /// `(stream, load)` records; same-stream records apply in order.
        accesses: Vec<(u64, AccessRecord)>,
    },
    /// Read the prefetches issued for `stream`'s most recent access.
    Predict {
        /// Stream id.
        stream: u64,
    },
    /// Bulk-ingest `accesses` on `stream` (same path as `Access`, one
    /// frame, aggregate reply).
    Train {
        /// Stream id.
        stream: u64,
        /// The loads, in stream order.
        accesses: Vec<AccessRecord>,
    },
    /// Stream counters (`Some`) or daemon-wide aggregates (`None`).
    Status {
        /// Stream id, or `None` for the whole daemon.
        stream: Option<u64>,
    },
    /// Update the template new streams are built from.
    Configure(ConfigDelta),
    /// Finish one stream (`Some`) or drain everything and shut down
    /// (`None`).
    Drain {
        /// Stream id, or `None` for daemon shutdown.
        stream: Option<u64>,
    },
}

const REQ_ACCESS: u8 = 1;
const REQ_PREDICT: u8 = 2;
const REQ_TRAIN: u8 = 3;
const REQ_STATUS: u8 = 4;
const REQ_CONFIGURE: u8 = 5;
const REQ_DRAIN: u8 = 6;
const REQ_ACCESS_BATCH: u8 = 7;

/// Wire bytes one `(stream, AccessRecord)` batch record occupies.
const BATCH_RECORD_BYTES: usize = 8 + 8 + 8 + 8 + 1;

impl Request {
    /// Serializes the request to a frame payload.
    pub fn encode(&self) -> Vec<u8> {
        let mut e = Enc::new();
        match self {
            Request::Access { stream, access } => {
                e.u8(REQ_ACCESS);
                e.u64(*stream);
                access.encode(&mut e);
            }
            Request::AccessBatch { accesses } => {
                let mut enc = Enc::with_capacity(1 + 4 + accesses.len() * BATCH_RECORD_BYTES);
                enc.u8(REQ_ACCESS_BATCH);
                enc.u32(accesses.len() as u32);
                for (stream, rec) in accesses {
                    enc.u64(*stream);
                    rec.encode(&mut enc);
                }
                return enc.into_bytes();
            }
            Request::Predict { stream } => {
                e.u8(REQ_PREDICT);
                e.u64(*stream);
            }
            Request::Train { stream, accesses } => {
                e.u8(REQ_TRAIN);
                e.u64(*stream);
                e.u32(accesses.len() as u32);
                for a in accesses {
                    a.encode(&mut e);
                }
            }
            Request::Status { stream } => {
                e.u8(REQ_STATUS);
                e.opt_u64(*stream);
            }
            Request::Configure(delta) => {
                e.u8(REQ_CONFIGURE);
                delta.encode(&mut e);
            }
            Request::Drain { stream } => {
                e.u8(REQ_DRAIN);
                e.opt_u64(*stream);
            }
        }
        e.into_bytes()
    }

    /// Parses a frame payload.
    ///
    /// # Errors
    ///
    /// Returns a [`WireError`] on truncation, unknown tags, or trailing
    /// bytes.
    pub fn decode(payload: &[u8]) -> Result<Self, WireError> {
        let mut d = Dec::new(payload);
        let req = match d.u8()? {
            REQ_ACCESS => Request::Access {
                stream: d.u64()?,
                access: AccessRecord::decode(&mut d)?,
            },
            REQ_PREDICT => Request::Predict { stream: d.u64()? },
            REQ_TRAIN => {
                let stream = d.u64()?;
                let n = d.u32()? as usize;
                let mut accesses = Vec::with_capacity(n.min(1 << 16));
                for _ in 0..n {
                    accesses.push(AccessRecord::decode(&mut d)?);
                }
                Request::Train { stream, accesses }
            }
            REQ_STATUS => Request::Status {
                stream: d.opt_u64()?,
            },
            REQ_CONFIGURE => Request::Configure(ConfigDelta::decode(&mut d)?),
            REQ_DRAIN => Request::Drain {
                stream: d.opt_u64()?,
            },
            REQ_ACCESS_BATCH => {
                let n = d.u32()? as usize;
                if n > MAX_BATCH_RECORDS {
                    return Err(WireError(format!(
                        "access_batch of {n} records exceeds the {MAX_BATCH_RECORDS}-record cap"
                    )));
                }
                let mut accesses = Vec::with_capacity(n);
                for _ in 0..n {
                    let stream = d.u64()?;
                    accesses.push((stream, AccessRecord::decode(&mut d)?));
                }
                Request::AccessBatch { accesses }
            }
            other => return Err(WireError(format!("unknown request tag {other}"))),
        };
        if !d.is_empty() {
            return Err(WireError("trailing bytes after request".into()));
        }
        Ok(req)
    }
}

/// Per-stream counters (`status` with a stream id).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct StreamStatus {
    /// Stream id.
    pub stream: u64,
    /// Shard worker owning the stream.
    pub shard: u32,
    /// Demand loads ingested so far.
    pub accesses: u64,
    /// Schedule entries accumulated so far.
    pub schedule_len: u64,
    /// Blocks predicted on the most recent access.
    pub last_prediction: Vec<u64>,
    /// The stream prefetcher's operational counters.
    pub pf: PathfinderStats,
}

/// Daemon-wide aggregates (`status` without a stream id).
#[derive(Debug, Clone, PartialEq)]
pub struct ServeStatus {
    /// Shard workers in the pool.
    pub shards: u32,
    /// Live streams across all shards.
    pub streams: u64,
    /// Demand loads ingested across all streams (including drained ones).
    pub accesses: u64,
    /// Schedule entries accumulated across all streams (including drained).
    pub schedule_len: u64,
    /// Merged per-shard telemetry snapshot, as the telemetry crate's JSON
    /// document (empty object when telemetry is compiled out).
    pub telemetry_json: String,
}

/// One finished stream (`drain` reply).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct DrainedStream {
    /// Stream id.
    pub stream: u64,
    /// The full prefetch schedule the stream produced, as
    /// `(trigger_instr_id, block)` pairs in issue order — byte-comparable
    /// against a batch `generate_prefetches` run.
    pub schedule: Vec<(u64, u64)>,
    /// Timed-replay report of the stream's accumulated trace + schedule.
    pub report: SimReport,
    /// The stream prefetcher's final operational counters.
    pub pf: PathfinderStats,
}

/// A daemon reply.
#[derive(Debug, Clone, PartialEq)]
pub enum Response {
    /// Blocks to prefetch (for `access`; also `predict`'s read-back).
    Prefetches(Vec<u64>),
    /// Blocks to prefetch per `access_batch` record, in request order.
    PrefetchBatch(Vec<Vec<u64>>),
    /// Aggregate outcome of a `train` batch.
    Trained {
        /// Accesses ingested.
        accesses: u64,
        /// Schedule entries the batch produced.
        prefetched: u64,
    },
    /// Per-stream counters.
    Stream(StreamStatus),
    /// Daemon-wide aggregates.
    Status(ServeStatus),
    /// Finished streams, ascending by stream id.
    Drained(Vec<DrainedStream>),
    /// Verb acknowledged with nothing to report (`configure`).
    Ok,
    /// The verb could not be served (unknown stream, draining daemon,
    /// invalid configuration).
    Error(String),
}

const RESP_PREFETCHES: u8 = 1;
const RESP_TRAINED: u8 = 2;
const RESP_STREAM: u8 = 3;
const RESP_STATUS: u8 = 4;
const RESP_DRAINED: u8 = 5;
const RESP_OK: u8 = 6;
const RESP_ERROR: u8 = 7;
const RESP_PREFETCH_BATCH: u8 = 8;

fn encode_report(e: &mut Enc, r: &SimReport) {
    for v in [
        r.instructions,
        r.cycles,
        r.loads,
        r.l1d_hits,
        r.l2_hits,
        r.llc_load_accesses,
        r.llc_hits,
        r.llc_misses,
        r.prefetches_requested,
        r.prefetches_issued,
        r.prefetches_useful,
        r.prefetches_late,
        r.prefetches_useless,
    ] {
        e.u64(v);
    }
}

fn decode_report(d: &mut Dec<'_>) -> Result<SimReport, WireError> {
    Ok(SimReport {
        instructions: d.u64()?,
        cycles: d.u64()?,
        loads: d.u64()?,
        l1d_hits: d.u64()?,
        l2_hits: d.u64()?,
        llc_load_accesses: d.u64()?,
        llc_hits: d.u64()?,
        llc_misses: d.u64()?,
        prefetches_requested: d.u64()?,
        prefetches_issued: d.u64()?,
        prefetches_useful: d.u64()?,
        prefetches_late: d.u64()?,
        prefetches_useless: d.u64()?,
    })
}

fn encode_pf_stats(e: &mut Enc, s: &PathfinderStats) {
    for v in [
        s.accesses,
        s.snn_queries,
        s.fired,
        s.labels_assigned,
        s.predictions_correct,
        s.predictions_wrong,
        s.prefetches_issued,
        s.one_tick_comparisons,
        s.one_tick_matches,
        s.snn_cache_hits,
        s.snn_cache_misses,
        s.snn_cache_evictions,
        s.snn_cache_invalidations,
    ] {
        e.u64(v);
    }
}

fn decode_pf_stats(d: &mut Dec<'_>) -> Result<PathfinderStats, WireError> {
    Ok(PathfinderStats {
        accesses: d.u64()?,
        snn_queries: d.u64()?,
        fired: d.u64()?,
        labels_assigned: d.u64()?,
        predictions_correct: d.u64()?,
        predictions_wrong: d.u64()?,
        prefetches_issued: d.u64()?,
        one_tick_comparisons: d.u64()?,
        one_tick_matches: d.u64()?,
        snn_cache_hits: d.u64()?,
        snn_cache_misses: d.u64()?,
        snn_cache_evictions: d.u64()?,
        snn_cache_invalidations: d.u64()?,
    })
}

fn encode_blocks(e: &mut Enc, blocks: &[u64]) {
    e.u32(blocks.len() as u32);
    for &b in blocks {
        e.u64(b);
    }
}

fn decode_blocks(d: &mut Dec<'_>) -> Result<Vec<u64>, WireError> {
    let n = d.u32()? as usize;
    let mut out = Vec::with_capacity(n.min(1 << 16));
    for _ in 0..n {
        out.push(d.u64()?);
    }
    Ok(out)
}

impl Response {
    /// Serializes the response to a frame payload.
    pub fn encode(&self) -> Vec<u8> {
        let mut e = Enc::new();
        match self {
            Response::Prefetches(blocks) => {
                e.u8(RESP_PREFETCHES);
                encode_blocks(&mut e, blocks);
            }
            Response::PrefetchBatch(batch) => {
                // Degree caps each record's vector at a handful of blocks;
                // pre-sizing for 2 per record avoids regrowth on the hot
                // serving path.
                let mut enc = Enc::with_capacity(1 + 4 + batch.len() * (4 + 2 * 8));
                enc.u8(RESP_PREFETCH_BATCH);
                enc.u32(batch.len() as u32);
                for blocks in batch {
                    encode_blocks(&mut enc, blocks);
                }
                return enc.into_bytes();
            }
            Response::Trained {
                accesses,
                prefetched,
            } => {
                e.u8(RESP_TRAINED);
                e.u64(*accesses);
                e.u64(*prefetched);
            }
            Response::Stream(s) => {
                e.u8(RESP_STREAM);
                e.u64(s.stream);
                e.u32(s.shard);
                e.u64(s.accesses);
                e.u64(s.schedule_len);
                encode_blocks(&mut e, &s.last_prediction);
                encode_pf_stats(&mut e, &s.pf);
            }
            Response::Status(s) => {
                e.u8(RESP_STATUS);
                e.u32(s.shards);
                e.u64(s.streams);
                e.u64(s.accesses);
                e.u64(s.schedule_len);
                e.str(&s.telemetry_json);
            }
            Response::Drained(streams) => {
                e.u8(RESP_DRAINED);
                e.u32(streams.len() as u32);
                for s in streams {
                    e.u64(s.stream);
                    e.u32(s.schedule.len() as u32);
                    for &(trigger, block) in &s.schedule {
                        e.u64(trigger);
                        e.u64(block);
                    }
                    encode_report(&mut e, &s.report);
                    encode_pf_stats(&mut e, &s.pf);
                }
            }
            Response::Ok => e.u8(RESP_OK),
            Response::Error(msg) => {
                e.u8(RESP_ERROR);
                e.str(msg);
            }
        }
        e.into_bytes()
    }

    /// Parses a frame payload.
    ///
    /// # Errors
    ///
    /// Returns a [`WireError`] on truncation, unknown tags, or trailing
    /// bytes.
    pub fn decode(payload: &[u8]) -> Result<Self, WireError> {
        let mut d = Dec::new(payload);
        let resp = match d.u8()? {
            RESP_PREFETCHES => Response::Prefetches(decode_blocks(&mut d)?),
            RESP_PREFETCH_BATCH => {
                let n = d.u32()? as usize;
                if n > MAX_BATCH_RECORDS {
                    return Err(WireError(format!(
                        "prefetch_batch of {n} records exceeds the {MAX_BATCH_RECORDS}-record cap"
                    )));
                }
                let mut out = Vec::with_capacity(n);
                for _ in 0..n {
                    out.push(decode_blocks(&mut d)?);
                }
                Response::PrefetchBatch(out)
            }
            RESP_TRAINED => Response::Trained {
                accesses: d.u64()?,
                prefetched: d.u64()?,
            },
            RESP_STREAM => Response::Stream(StreamStatus {
                stream: d.u64()?,
                shard: d.u32()?,
                accesses: d.u64()?,
                schedule_len: d.u64()?,
                last_prediction: decode_blocks(&mut d)?,
                pf: decode_pf_stats(&mut d)?,
            }),
            RESP_STATUS => Response::Status(ServeStatus {
                shards: d.u32()?,
                streams: d.u64()?,
                accesses: d.u64()?,
                schedule_len: d.u64()?,
                telemetry_json: d.str()?,
            }),
            RESP_DRAINED => {
                let n = d.u32()? as usize;
                let mut out = Vec::with_capacity(n.min(1 << 16));
                for _ in 0..n {
                    let stream = d.u64()?;
                    let sched_n = d.u32()? as usize;
                    let mut schedule = Vec::with_capacity(sched_n.min(1 << 20));
                    for _ in 0..sched_n {
                        schedule.push((d.u64()?, d.u64()?));
                    }
                    out.push(DrainedStream {
                        stream,
                        schedule,
                        report: decode_report(&mut d)?,
                        pf: decode_pf_stats(&mut d)?,
                    });
                }
                Response::Drained(out)
            }
            RESP_OK => Response::Ok,
            RESP_ERROR => Response::Error(d.str()?),
            other => return Err(WireError(format!("unknown response tag {other}"))),
        };
        if !d.is_empty() {
            return Err(WireError("trailing bytes after response".into()));
        }
        Ok(resp)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn round_trip_req(req: Request) {
        let decoded = Request::decode(&req.encode()).expect("request decodes");
        assert_eq!(decoded, req);
    }

    fn round_trip_resp(resp: Response) {
        let decoded = Response::decode(&resp.encode()).expect("response decodes");
        assert_eq!(decoded, resp);
    }

    #[test]
    fn requests_round_trip() {
        round_trip_req(Request::Access {
            stream: 7,
            access: AccessRecord {
                instr_id: u64::MAX,
                pc: 0x400,
                vaddr: 0xFFFF_FFFF_F000,
                depends_on_prev: true,
            },
        });
        round_trip_req(Request::Predict { stream: 0 });
        round_trip_req(Request::Train {
            stream: 3,
            accesses: (0..5)
                .map(|i| AccessRecord {
                    instr_id: i,
                    pc: 0x8,
                    vaddr: i * 64,
                    depends_on_prev: i % 2 == 0,
                })
                .collect(),
        });
        round_trip_req(Request::AccessBatch {
            accesses: (0..17)
                .map(|i| {
                    (
                        i % 3,
                        AccessRecord {
                            instr_id: i * 7,
                            pc: 0x400 + i,
                            vaddr: i * 64,
                            depends_on_prev: i % 4 == 0,
                        },
                    )
                })
                .collect(),
        });
        round_trip_req(Request::AccessBatch {
            accesses: Vec::new(),
        });
        round_trip_req(Request::Status { stream: None });
        round_trip_req(Request::Status { stream: Some(9) });
        round_trip_req(Request::Configure(ConfigDelta {
            degree: Some(2),
            seed: None,
            duty: Some((250, 5000)),
            snn_cache_entries: Some(0),
        }));
        round_trip_req(Request::Drain { stream: Some(1) });
        round_trip_req(Request::Drain { stream: None });
    }

    #[test]
    fn responses_round_trip() {
        round_trip_resp(Response::Prefetches(vec![1, 2, u64::MAX]));
        round_trip_resp(Response::PrefetchBatch(vec![
            vec![1, 2],
            Vec::new(),
            vec![u64::MAX],
        ]));
        round_trip_resp(Response::PrefetchBatch(Vec::new()));
        round_trip_resp(Response::Trained {
            accesses: 2000,
            prefetched: 311,
        });
        round_trip_resp(Response::Stream(StreamStatus {
            stream: 4,
            shard: 2,
            accesses: 100,
            schedule_len: 42,
            last_prediction: vec![77, 78],
            pf: PathfinderStats {
                accesses: 100,
                snn_queries: 90,
                ..PathfinderStats::default()
            },
        }));
        round_trip_resp(Response::Status(ServeStatus {
            shards: 4,
            streams: 11,
            accesses: 123456,
            schedule_len: 9876,
            telemetry_json: "{\"counters\":{}}".into(),
        }));
        round_trip_resp(Response::Drained(vec![DrainedStream {
            stream: 5,
            schedule: vec![(1, 100), (2, 101)],
            report: SimReport {
                instructions: 1000,
                cycles: 750,
                loads: 10,
                ..SimReport::default()
            },
            pf: PathfinderStats::default(),
        }]));
        round_trip_resp(Response::Ok);
        round_trip_resp(Response::Error("unknown stream 9".into()));
    }

    #[test]
    fn garbage_is_rejected() {
        assert!(Request::decode(&[]).is_err());
        assert!(Request::decode(&[99]).is_err());
        assert!(Response::decode(&[0]).is_err());
        // Trailing bytes are an error, not silently ignored.
        let mut bytes = Request::Predict { stream: 1 }.encode();
        bytes.push(0);
        assert!(Request::decode(&bytes).is_err());
        let mut bytes = Response::Ok.encode();
        bytes.push(1);
        assert!(Response::decode(&bytes).is_err());
    }

    #[test]
    fn oversized_and_truncated_batches_are_rejected() {
        // A declared record count over the cap is rejected before any
        // allocation or record parsing happens.
        let mut e = Enc::new();
        e.u8(7); // REQ_ACCESS_BATCH
        e.u32((MAX_BATCH_RECORDS + 1) as u32);
        let err = Request::decode(&e.into_bytes()).unwrap_err();
        assert!(err.0.contains("cap"), "got: {err}");

        // A batch whose payload runs out mid-record is a truncation error.
        let mut e = Enc::new();
        e.u8(7);
        e.u32(3);
        e.u64(0); // stream of record 0 only
        assert!(Request::decode(&e.into_bytes()).is_err());

        // Same caps on the reply side.
        let mut e = Enc::new();
        e.u8(8); // RESP_PREFETCH_BATCH
        e.u32((MAX_BATCH_RECORDS + 1) as u32);
        assert!(Response::decode(&e.into_bytes()).is_err());
    }
}
