//! Length-prefixed framing and the little-endian binary codec the service
//! protocol is built on.
//!
//! A frame is a `u32` little-endian payload length followed by exactly that
//! many payload bytes. The codec below is deliberately tiny: fixed-width
//! little-endian integers, `u8` booleans and tags, and `u32`-length-prefixed
//! UTF-8 strings. Integers are never routed through floating point, so
//! 64-bit addresses, block numbers, and counters round-trip exactly — the
//! bit-identical parity discipline extends to the wire.

use std::io::{self, Read, Write};

/// Upper bound on a single frame's payload (16 MiB). A drained stream's
/// full schedule is the largest message the protocol carries; at the
/// competition degree limit of 2 that bound allows streams of ~500K loads
/// per drain, far beyond what one frame should ever need. Oversized frames
/// are rejected on both ends rather than trusted.
pub const MAX_FRAME_LEN: usize = 16 << 20;

/// Writes one length-prefixed frame.
///
/// # Errors
///
/// Propagates I/O errors; rejects payloads over [`MAX_FRAME_LEN`] with
/// [`io::ErrorKind::InvalidData`].
pub fn write_frame<W: Write>(w: &mut W, payload: &[u8]) -> io::Result<()> {
    if payload.len() > MAX_FRAME_LEN {
        return Err(io::Error::new(
            io::ErrorKind::InvalidData,
            format!("frame of {} bytes exceeds MAX_FRAME_LEN", payload.len()),
        ));
    }
    w.write_all(&(payload.len() as u32).to_le_bytes())?;
    w.write_all(payload)?;
    w.flush()
}

/// Reads one length-prefixed frame. Returns `Ok(None)` on a clean EOF at a
/// frame boundary (the peer closed the connection between requests).
///
/// # Errors
///
/// Propagates I/O errors; an EOF inside a frame or a length over
/// [`MAX_FRAME_LEN`] is [`io::ErrorKind::InvalidData`] /
/// [`io::ErrorKind::UnexpectedEof`].
pub fn read_frame<R: Read>(r: &mut R) -> io::Result<Option<Vec<u8>>> {
    let mut len_bytes = [0u8; 4];
    let mut filled = 0usize;
    while filled < 4 {
        match r.read(&mut len_bytes[filled..]) {
            Ok(0) => {
                if filled == 0 {
                    return Ok(None); // clean EOF between frames
                }
                return Err(io::ErrorKind::UnexpectedEof.into());
            }
            Ok(n) => filled += n,
            Err(e) if e.kind() == io::ErrorKind::Interrupted => {}
            Err(e) => return Err(e),
        }
    }
    let len = u32::from_le_bytes(len_bytes) as usize;
    if len > MAX_FRAME_LEN {
        return Err(io::Error::new(
            io::ErrorKind::InvalidData,
            format!("frame length {len} exceeds MAX_FRAME_LEN"),
        ));
    }
    let mut payload = vec![0u8; len];
    r.read_exact(&mut payload)?;
    Ok(Some(payload))
}

/// Codec decode failure: truncated buffer, bad tag, or malformed UTF-8.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct WireError(pub String);

impl std::fmt::Display for WireError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "wire decode error: {}", self.0)
    }
}

impl std::error::Error for WireError {}

impl From<WireError> for io::Error {
    fn from(e: WireError) -> io::Error {
        io::Error::new(io::ErrorKind::InvalidData, e.to_string())
    }
}

/// Append-only payload encoder.
#[derive(Debug, Default)]
pub struct Enc {
    buf: Vec<u8>,
}

impl Enc {
    /// Creates an empty encoder.
    pub fn new() -> Self {
        Enc::default()
    }

    /// Creates an empty encoder with `bytes` of payload capacity
    /// pre-reserved — used by the batch verbs, whose payload size is known
    /// up front, to keep frame encoding to a single allocation.
    pub fn with_capacity(bytes: usize) -> Self {
        Enc {
            buf: Vec::with_capacity(bytes),
        }
    }

    /// Consumes the encoder, yielding the payload bytes.
    pub fn into_bytes(self) -> Vec<u8> {
        self.buf
    }

    /// Appends one byte (tags, small enums).
    pub fn u8(&mut self, v: u8) {
        self.buf.push(v);
    }

    /// Appends a `u32`, little-endian.
    pub fn u32(&mut self, v: u32) {
        self.buf.extend_from_slice(&v.to_le_bytes());
    }

    /// Appends a `u64`, little-endian.
    pub fn u64(&mut self, v: u64) {
        self.buf.extend_from_slice(&v.to_le_bytes());
    }

    /// Appends a boolean as one byte.
    pub fn bool(&mut self, v: bool) {
        self.buf.push(v as u8);
    }

    /// Appends `Some(v)` as `1` + value, `None` as `0`.
    pub fn opt_u64(&mut self, v: Option<u64>) {
        match v {
            Some(v) => {
                self.u8(1);
                self.u64(v);
            }
            None => self.u8(0),
        }
    }

    /// Appends a length-prefixed UTF-8 string.
    pub fn str(&mut self, s: &str) {
        self.u32(s.len() as u32);
        self.buf.extend_from_slice(s.as_bytes());
    }
}

/// Cursor-style payload decoder.
#[derive(Debug)]
pub struct Dec<'a> {
    buf: &'a [u8],
    pos: usize,
}

impl<'a> Dec<'a> {
    /// Wraps a payload for decoding.
    pub fn new(buf: &'a [u8]) -> Self {
        Dec { buf, pos: 0 }
    }

    /// Whether every byte has been consumed (decoders should end here).
    pub fn is_empty(&self) -> bool {
        self.pos == self.buf.len()
    }

    fn take(&mut self, n: usize) -> Result<&'a [u8], WireError> {
        if self.pos + n > self.buf.len() {
            return Err(WireError(format!(
                "needed {n} bytes at offset {}, payload is {} bytes",
                self.pos,
                self.buf.len()
            )));
        }
        let s = &self.buf[self.pos..self.pos + n];
        self.pos += n;
        Ok(s)
    }

    /// Reads one byte.
    pub fn u8(&mut self) -> Result<u8, WireError> {
        Ok(self.take(1)?[0])
    }

    /// Reads a little-endian `u32`.
    pub fn u32(&mut self) -> Result<u32, WireError> {
        Ok(u32::from_le_bytes(self.take(4)?.try_into().unwrap()))
    }

    /// Reads a little-endian `u64`.
    pub fn u64(&mut self) -> Result<u64, WireError> {
        Ok(u64::from_le_bytes(self.take(8)?.try_into().unwrap()))
    }

    /// Reads a one-byte boolean (strictly 0 or 1).
    pub fn bool(&mut self) -> Result<bool, WireError> {
        match self.u8()? {
            0 => Ok(false),
            1 => Ok(true),
            other => Err(WireError(format!("invalid bool byte {other}"))),
        }
    }

    /// Reads an optional `u64` (`0` tag = `None`, `1` tag = value follows).
    pub fn opt_u64(&mut self) -> Result<Option<u64>, WireError> {
        match self.u8()? {
            0 => Ok(None),
            1 => Ok(Some(self.u64()?)),
            other => Err(WireError(format!("invalid option tag {other}"))),
        }
    }

    /// Reads a length-prefixed UTF-8 string.
    pub fn str(&mut self) -> Result<String, WireError> {
        let len = self.u32()? as usize;
        let bytes = self.take(len)?;
        String::from_utf8(bytes.to_vec()).map_err(|e| WireError(format!("bad utf-8 string: {e}")))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn scalars_round_trip() {
        let mut e = Enc::new();
        e.u8(7);
        e.u32(0xDEAD_BEEF);
        e.u64(u64::MAX - 3);
        e.bool(true);
        e.bool(false);
        e.opt_u64(Some(42));
        e.opt_u64(None);
        e.str("prefetch-as-a-service");
        let bytes = e.into_bytes();
        let mut d = Dec::new(&bytes);
        assert_eq!(d.u8().unwrap(), 7);
        assert_eq!(d.u32().unwrap(), 0xDEAD_BEEF);
        assert_eq!(d.u64().unwrap(), u64::MAX - 3);
        assert!(d.bool().unwrap());
        assert!(!d.bool().unwrap());
        assert_eq!(d.opt_u64().unwrap(), Some(42));
        assert_eq!(d.opt_u64().unwrap(), None);
        assert_eq!(d.str().unwrap(), "prefetch-as-a-service");
        assert!(d.is_empty());
    }

    #[test]
    fn truncation_and_bad_tags_are_errors() {
        let mut d = Dec::new(&[1, 2]);
        assert!(d.u64().is_err());
        let mut d = Dec::new(&[9]);
        assert!(d.bool().is_err());
        let mut d = Dec::new(&[2]);
        assert!(d.opt_u64().is_err());
        // String length pointing past the buffer.
        let mut e = Enc::new();
        e.u32(100);
        let bytes = e.into_bytes();
        assert!(Dec::new(&bytes).str().is_err());
    }

    #[test]
    fn frames_round_trip_and_detect_eof() {
        let mut buf = Vec::new();
        write_frame(&mut buf, b"alpha").unwrap();
        write_frame(&mut buf, b"").unwrap();
        write_frame(&mut buf, b"beta").unwrap();
        let mut cur = io::Cursor::new(buf);
        assert_eq!(
            read_frame(&mut cur).unwrap().as_deref(),
            Some(&b"alpha"[..])
        );
        assert_eq!(read_frame(&mut cur).unwrap().as_deref(), Some(&b""[..]));
        assert_eq!(read_frame(&mut cur).unwrap().as_deref(), Some(&b"beta"[..]));
        assert_eq!(read_frame(&mut cur).unwrap(), None, "clean EOF");

        // Truncated inside a frame: an error, not a silent None.
        let mut partial = Vec::new();
        write_frame(&mut partial, b"gamma").unwrap();
        partial.truncate(6);
        let mut cur = io::Cursor::new(partial);
        assert!(read_frame(&mut cur).is_err());

        // A declared length beyond the cap is rejected before allocation.
        let mut huge = ((MAX_FRAME_LEN + 1) as u32).to_le_bytes().to_vec();
        huge.extend_from_slice(&[0; 8]);
        assert!(read_frame(&mut io::Cursor::new(huge)).is_err());
    }
}
