//! Property test for concurrent shard scheduling: interleaving K streams'
//! accesses in *any* order through the pool yields per-stream results
//! identical to each stream replayed sequentially on its own.
//!
//! Per the ROADMAP's stub-rand constraint this is seed-robust by
//! construction: it asserts on schedules, reports, and stats equality —
//! values fully determined by per-stream inputs — never on which stream
//! "wins" any cross-stream ordering.

use proptest::prelude::*;

use pathfinder_serve::{
    AccessRecord, DrainedStream, Request, Response, ServeEngine, StreamSession, StreamTemplate,
};

const STREAMS: usize = 3;
const LOADS: u64 = 40;

/// Stream `s`'s deterministic access pattern: distinct stride + irregular
/// hop per stream so the learners see genuinely different inputs.
fn pattern(s: u64) -> Vec<AccessRecord> {
    (0..LOADS)
        .map(|i| AccessRecord {
            instr_id: i * (2 + s),
            pc: 0x400 + s * 0x1000 + (i % 3) * 8,
            vaddr: i * 64 * (s + 1) + if i % (7 + s) == 0 { 1 << 20 } else { 0 },
            depends_on_prev: i % (3 + s) == 0,
        })
        .collect()
}

/// The sequential baseline: each stream alone through its own session.
/// Interleaving-independent, so it is computed once across all cases.
fn sequential(template: &StreamTemplate) -> &'static [DrainedStream] {
    static EXPECTED: std::sync::OnceLock<Vec<DrainedStream>> = std::sync::OnceLock::new();
    EXPECTED.get_or_init(|| {
        (0..STREAMS as u64)
            .map(|s| {
                let mut session = StreamSession::new(s, template).expect("valid template");
                for rec in pattern(s) {
                    session.access(rec);
                }
                session.drain()
            })
            .collect()
    })
}

/// Decodes proptest draws into an interleaving: at each step, the draw
/// picks which still-unfinished stream advances by one access.
fn drive_interleaved(engine: &ServeEngine, picks: &[u64]) {
    let patterns: Vec<Vec<AccessRecord>> = (0..STREAMS as u64).map(pattern).collect();
    let mut cursors = [0usize; STREAMS];
    let mut picks = picks.iter().copied().cycle();
    let total: usize = patterns.iter().map(Vec::len).sum();
    for _ in 0..total {
        let live: Vec<usize> = (0..STREAMS)
            .filter(|&s| cursors[s] < patterns[s].len())
            .collect();
        let s = live[(picks.next().expect("cycled") as usize) % live.len()];
        let rec = patterns[s][cursors[s]];
        cursors[s] += 1;
        let resp = engine.request(Request::Access {
            stream: s as u64,
            access: rec,
        });
        assert!(matches!(resp, Response::Prefetches(_)));
    }
}

proptest! {
    #[test]
    fn any_interleaving_matches_sequential_replay(
        picks in prop::collection::vec(any::<u64>(), 16..64),
        shards in 1u64..5,
    ) {
        let template = StreamTemplate::default();
        let expected = sequential(&template);

        let engine = ServeEngine::with_template(template.clone(), shards as usize);
        drive_interleaved(&engine, &picks);
        let Response::Drained(drained) = engine.request(Request::Drain { stream: None })
        else {
            panic!("full drain failed")
        };

        prop_assert_eq!(drained.len(), STREAMS);
        for (served, baseline) in drained.iter().zip(expected) {
            prop_assert_eq!(served.stream, baseline.stream);
            prop_assert_eq!(
                &served.schedule, &baseline.schedule,
                "stream {} schedule diverged under interleaving", served.stream
            );
            prop_assert_eq!(
                &served.report, &baseline.report,
                "stream {} report diverged under interleaving", served.stream
            );
            prop_assert_eq!(
                &served.pf, &baseline.pf,
                "stream {} stats diverged under interleaving", served.stream
            );
        }
    }
}
