//! Property test for concurrent shard scheduling: interleaving K streams'
//! accesses in *any* order through the pool — as one-shot `access` calls,
//! sticky-requester `access` calls, or cross-stream `access_batch` frames —
//! yields per-stream results identical to each stream replayed sequentially
//! on its own.
//!
//! Per the ROADMAP's stub-rand constraint this is seed-robust by
//! construction: it asserts on schedules, reports, and stats equality —
//! values fully determined by per-stream inputs — never on which stream
//! "wins" any cross-stream ordering.

use proptest::prelude::*;

use pathfinder_serve::{
    AccessRecord, DrainedStream, Request, Response, ServeEngine, StreamSession, StreamTemplate,
};

const STREAMS: usize = 3;
const LOADS: u64 = 40;

/// Stream `s`'s deterministic access pattern: distinct stride + irregular
/// hop per stream so the learners see genuinely different inputs.
fn pattern(s: u64) -> Vec<AccessRecord> {
    (0..LOADS)
        .map(|i| AccessRecord {
            instr_id: i * (2 + s),
            pc: 0x400 + s * 0x1000 + (i % 3) * 8,
            vaddr: i * 64 * (s + 1) + if i % (7 + s) == 0 { 1 << 20 } else { 0 },
            depends_on_prev: i % (3 + s) == 0,
        })
        .collect()
}

/// The sequential baseline: each stream alone through its own session.
/// Interleaving-independent, so it is computed once across all cases.
fn sequential(template: &StreamTemplate) -> &'static [DrainedStream] {
    static EXPECTED: std::sync::OnceLock<Vec<DrainedStream>> = std::sync::OnceLock::new();
    EXPECTED.get_or_init(|| {
        (0..STREAMS as u64)
            .map(|s| {
                let mut session = StreamSession::new(s, template).expect("valid template");
                for rec in pattern(s) {
                    session.access(rec);
                }
                session.drain()
            })
            .collect()
    })
}

/// Decodes proptest draws into an interleaving: at each step, the draw
/// picks which still-unfinished stream(s) advance, and over which verb
/// shape — a one-shot `access` (fresh reply channels), an `access` on the
/// long-lived sticky requester, or a cross-stream `access_batch` frame of
/// up to 5 records.
fn drive_interleaved(engine: &ServeEngine, picks: &[u64]) {
    let patterns: Vec<Vec<AccessRecord>> = (0..STREAMS as u64).map(pattern).collect();
    let mut cursors = [0usize; STREAMS];
    let mut picks = picks.iter().copied().cycle();
    let mut sticky = engine.requester();
    let total: usize = patterns.iter().map(Vec::len).sum();
    let mut sent = 0usize;
    while sent < total {
        let pick = picks.next().expect("cycled");
        let live: Vec<usize> = (0..STREAMS)
            .filter(|&s| cursors[s] < patterns[s].len())
            .collect();
        match pick % 3 {
            shape @ (0 | 1) => {
                let s = live[((pick >> 2) as usize) % live.len()];
                let req = Request::Access {
                    stream: s as u64,
                    access: patterns[s][cursors[s]],
                };
                cursors[s] += 1;
                let resp = if shape == 0 {
                    engine.request(req)
                } else {
                    sticky.request(req)
                };
                assert!(matches!(resp, Response::Prefetches(_)));
                sent += 1;
            }
            _ => {
                let want = 1 + ((pick >> 2) % 5) as usize;
                let mut accesses = Vec::new();
                for k in 0..want {
                    let live: Vec<usize> = (0..STREAMS)
                        .filter(|&s| cursors[s] < patterns[s].len())
                        .collect();
                    if live.is_empty() {
                        break;
                    }
                    let s = live[((pick >> (8 + 2 * k)) as usize) % live.len()];
                    accesses.push((s as u64, patterns[s][cursors[s]]));
                    cursors[s] += 1;
                }
                let n = accesses.len();
                let resp = sticky.request(Request::AccessBatch { accesses });
                let Response::PrefetchBatch(parts) = resp else {
                    panic!("access_batch reply was {resp:?}")
                };
                assert_eq!(parts.len(), n, "one reply slot per batch record");
                sent += n;
            }
        }
    }
}

proptest! {
    #[test]
    fn any_interleaving_matches_sequential_replay(
        picks in prop::collection::vec(any::<u64>(), 16..64),
        shards in 1u64..5,
    ) {
        let template = StreamTemplate::default();
        let expected = sequential(&template);

        let engine = ServeEngine::with_template(template.clone(), shards as usize);
        drive_interleaved(&engine, &picks);
        let Response::Drained(drained) = engine.request(Request::Drain { stream: None })
        else {
            panic!("full drain failed")
        };

        prop_assert_eq!(drained.len(), STREAMS);
        for (served, baseline) in drained.iter().zip(expected) {
            prop_assert_eq!(served.stream, baseline.stream);
            prop_assert_eq!(
                &served.schedule, &baseline.schedule,
                "stream {} schedule diverged under interleaving", served.stream
            );
            prop_assert_eq!(
                &served.report, &baseline.report,
                "stream {} report diverged under interleaving", served.stream
            );
            prop_assert_eq!(
                &served.pf, &baseline.pf,
                "stream {} stats diverged under interleaving", served.stream
            );
        }
    }
}
