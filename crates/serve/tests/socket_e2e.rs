//! End-to-end exercise of the Unix-socket transport: a real daemon on a
//! real socket, concurrent clients, clean drain shutdown, and schedule
//! parity across the full wire round trip.

use std::sync::Arc;
use std::time::Duration;

use pathfinder_serve::{
    serve_unix, AccessRecord, Request, Response, ServeEngine, StreamTemplate, UnixClient,
};
use pathfinder_traces::Workload;

fn socket_path(tag: &str) -> std::path::PathBuf {
    std::env::temp_dir().join(format!("pf-serve-{tag}-{}.sock", std::process::id()))
}

fn record(a: &pathfinder_sim::MemoryAccess) -> AccessRecord {
    AccessRecord {
        instr_id: a.instr_id,
        pc: a.pc.0,
        vaddr: a.vaddr.0,
        depends_on_prev: a.depends_on_prev,
    }
}

#[test]
fn concurrent_clients_over_a_unix_socket_with_clean_drain() {
    const CLIENTS: u64 = 4;
    const LOADS: usize = 500;
    let path = socket_path("e2e");
    let template = StreamTemplate::default();
    let engine = Arc::new(ServeEngine::with_template(template.clone(), 2));

    let daemon = {
        let engine = Arc::clone(&engine);
        let path = path.clone();
        std::thread::spawn(move || serve_unix(engine, &path))
    };

    // One client thread per stream; each alternates single `access` calls
    // with `train` frames so both ingestion verbs cross the wire, then
    // reads `predict` and per-stream `status` back.
    let workers: Vec<_> = (0..CLIENTS)
        .map(|stream| {
            let path = path.clone();
            std::thread::spawn(move || {
                let trace = Workload::ALL[stream as usize].generate(LOADS, stream);
                let mut client = UnixClient::connect_with_retry(&path, Duration::from_secs(10))
                    .expect("daemon comes up");
                let accesses = trace.accesses();
                let (head, tail) = accesses.split_at(accesses.len() / 2);
                for a in head {
                    let resp = client
                        .request(&Request::Access {
                            stream,
                            access: record(a),
                        })
                        .expect("access round trip");
                    assert!(matches!(resp, Response::Prefetches(_)));
                }
                let resp = client
                    .request(&Request::Train {
                        stream,
                        accesses: tail.iter().map(record).collect(),
                    })
                    .expect("train round trip");
                let Response::Trained { accesses: n, .. } = resp else {
                    panic!("train reply was {resp:?}")
                };
                assert_eq!(n, tail.len() as u64);

                let resp = client
                    .request(&Request::Predict { stream })
                    .expect("predict round trip");
                assert!(matches!(resp, Response::Prefetches(_)));

                let resp = client
                    .request(&Request::Status {
                        stream: Some(stream),
                    })
                    .expect("status round trip");
                let Response::Stream(status) = resp else {
                    panic!("status reply was {resp:?}")
                };
                assert_eq!(status.accesses, LOADS as u64);
                assert_eq!(status.pf.accesses, LOADS as u64);
            })
        })
        .collect();
    for w in workers {
        w.join().expect("client thread");
    }

    // Daemon-wide status sums every client's work.
    let mut client =
        UnixClient::connect_with_retry(&path, Duration::from_secs(10)).expect("connect");
    let Response::Status(daemon_status) = client
        .request(&Request::Status { stream: None })
        .expect("daemon status")
    else {
        panic!("daemon status failed")
    };
    assert_eq!(daemon_status.streams, CLIENTS);
    assert_eq!(daemon_status.accesses, CLIENTS * LOADS as u64);

    // Full drain: all streams come back sorted, the accept loop exits, the
    // socket file disappears.
    let Response::Drained(drained) = client
        .request(&Request::Drain { stream: None })
        .expect("drain round trip")
    else {
        panic!("drain failed")
    };
    assert_eq!(drained.len(), CLIENTS as usize);
    let ids: Vec<u64> = drained.iter().map(|d| d.stream).collect();
    assert_eq!(ids, (0..CLIENTS).collect::<Vec<_>>());

    daemon
        .join()
        .expect("daemon thread")
        .expect("daemon exited cleanly");
    assert!(!path.exists(), "socket file removed on clean shutdown");

    // Wire parity: stream 0's drained schedule matches a batch run of the
    // same trace — the frames changed nothing.
    let trace = Workload::ALL[0].generate(LOADS, 0);
    let mut pf = pathfinder_core::PathfinderPrefetcher::new(template.config_for_stream(0))
        .expect("valid config");
    let schedule =
        pathfinder_prefetch::generate_prefetches(&mut pf, &trace, template.sim.max_prefetch_degree);
    let report = pathfinder_sim::Simulator::new(template.sim).run(&trace, &schedule);
    let pairs: Vec<(u64, u64)> = schedule
        .iter()
        .map(|r| (r.trigger_instr_id, r.block.0))
        .collect();
    assert_eq!(drained[0].schedule, pairs);
    assert_eq!(drained[0].report, report);
    assert_eq!(&drained[0].pf, pf.stats());
}

#[test]
fn malformed_frames_get_an_error_reply_not_a_dead_daemon() {
    use std::io::Write;
    use std::os::unix::net::UnixStream;

    let path = socket_path("garbage");
    let engine = Arc::new(ServeEngine::new(1));
    let daemon = {
        let engine = Arc::clone(&engine);
        let path = path.clone();
        std::thread::spawn(move || serve_unix(engine, &path))
    };

    // Wait for the daemon, then send a syntactically valid frame holding a
    // semantically garbage payload: the daemon must answer Error, not die.
    let mut raw = loop {
        match UnixStream::connect(&path) {
            Ok(s) => break s,
            Err(_) => std::thread::sleep(Duration::from_millis(10)),
        }
    };
    let garbage = [9u8, 9, 9];
    raw.write_all(&(garbage.len() as u32).to_le_bytes())
        .unwrap();
    raw.write_all(&garbage).unwrap();
    let reply = pathfinder_serve::wire::read_frame(&mut raw)
        .expect("reply frame")
        .expect("daemon replied");
    assert!(matches!(
        Response::decode(&reply).expect("decodable reply"),
        Response::Error(_)
    ));
    drop(raw);

    // The daemon still serves a well-formed client afterwards.
    let mut client =
        UnixClient::connect_with_retry(&path, Duration::from_secs(10)).expect("connect");
    let resp = client
        .request(&Request::Access {
            stream: 0,
            access: AccessRecord {
                instr_id: 0,
                pc: 0x400,
                vaddr: 0,
                depends_on_prev: false,
            },
        })
        .expect("access after garbage");
    assert!(matches!(resp, Response::Prefetches(_)));
    let Response::Drained(_) = client
        .request(&Request::Drain { stream: None })
        .expect("drain")
    else {
        panic!("drain failed")
    };
    daemon.join().unwrap().expect("clean exit");
}
