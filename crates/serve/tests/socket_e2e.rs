//! End-to-end exercise of the Unix-socket transport: a real daemon on a
//! real socket, concurrent clients, clean drain shutdown, and schedule
//! parity across the full wire round trip.

use std::sync::Arc;
use std::time::Duration;

use pathfinder_serve::{
    serve_unix, AccessRecord, Request, Response, ServeEngine, StreamTemplate, UnixClient,
};
use pathfinder_traces::Workload;

fn socket_path(tag: &str) -> std::path::PathBuf {
    std::env::temp_dir().join(format!("pf-serve-{tag}-{}.sock", std::process::id()))
}

fn record(a: &pathfinder_sim::MemoryAccess) -> AccessRecord {
    AccessRecord {
        instr_id: a.instr_id,
        pc: a.pc.0,
        vaddr: a.vaddr.0,
        depends_on_prev: a.depends_on_prev,
    }
}

#[test]
fn concurrent_clients_over_a_unix_socket_with_clean_drain() {
    const CLIENTS: u64 = 4;
    const LOADS: usize = 500;
    let path = socket_path("e2e");
    let template = StreamTemplate::default();
    let engine = Arc::new(ServeEngine::with_template(template.clone(), 2));

    let daemon = {
        let engine = Arc::clone(&engine);
        let path = path.clone();
        std::thread::spawn(move || serve_unix(engine, &path))
    };

    // One client thread per stream; each mixes single `access` calls,
    // `access_batch` frames, and `train` frames so all three ingestion
    // verbs cross the wire, then reads `predict` and per-stream `status`
    // back.
    let workers: Vec<_> = (0..CLIENTS)
        .map(|stream| {
            let path = path.clone();
            std::thread::spawn(move || {
                let trace = Workload::ALL[stream as usize].generate(LOADS, stream);
                let mut client = UnixClient::connect_with_retry(&path, Duration::from_secs(10))
                    .expect("daemon comes up");
                let accesses = trace.accesses();
                let (head, tail) = accesses.split_at(accesses.len() / 2);
                let (singles, batched) = head.split_at(head.len() / 2);
                for a in singles {
                    let resp = client
                        .request(&Request::Access {
                            stream,
                            access: record(a),
                        })
                        .expect("access round trip");
                    assert!(matches!(resp, Response::Prefetches(_)));
                }
                // Stream-local frames: all records map to one shard, so
                // the daemon side takes the sticky direct path.
                for chunk in batched.chunks(32) {
                    let resp = client
                        .request(&Request::AccessBatch {
                            accesses: chunk.iter().map(|a| (stream, record(a))).collect(),
                        })
                        .expect("access_batch round trip");
                    let Response::PrefetchBatch(parts) = resp else {
                        panic!("access_batch reply was {resp:?}")
                    };
                    assert_eq!(parts.len(), chunk.len());
                }
                let resp = client
                    .request(&Request::Train {
                        stream,
                        accesses: tail.iter().map(record).collect(),
                    })
                    .expect("train round trip");
                let Response::Trained { accesses: n, .. } = resp else {
                    panic!("train reply was {resp:?}")
                };
                assert_eq!(n, tail.len() as u64);

                let resp = client
                    .request(&Request::Predict { stream })
                    .expect("predict round trip");
                assert!(matches!(resp, Response::Prefetches(_)));

                let resp = client
                    .request(&Request::Status {
                        stream: Some(stream),
                    })
                    .expect("status round trip");
                let Response::Stream(status) = resp else {
                    panic!("status reply was {resp:?}")
                };
                assert_eq!(status.accesses, LOADS as u64);
                assert_eq!(status.pf.accesses, LOADS as u64);
            })
        })
        .collect();
    for w in workers {
        w.join().expect("client thread");
    }

    // Daemon-wide status sums every client's work.
    let mut client =
        UnixClient::connect_with_retry(&path, Duration::from_secs(10)).expect("connect");
    let Response::Status(daemon_status) = client
        .request(&Request::Status { stream: None })
        .expect("daemon status")
    else {
        panic!("daemon status failed")
    };
    assert_eq!(daemon_status.streams, CLIENTS);
    assert_eq!(daemon_status.accesses, CLIENTS * LOADS as u64);

    // Full drain: all streams come back sorted, the accept loop exits, the
    // socket file disappears.
    let Response::Drained(drained) = client
        .request(&Request::Drain { stream: None })
        .expect("drain round trip")
    else {
        panic!("drain failed")
    };
    assert_eq!(drained.len(), CLIENTS as usize);
    let ids: Vec<u64> = drained.iter().map(|d| d.stream).collect();
    assert_eq!(ids, (0..CLIENTS).collect::<Vec<_>>());

    daemon
        .join()
        .expect("daemon thread")
        .expect("daemon exited cleanly");
    assert!(!path.exists(), "socket file removed on clean shutdown");

    // Wire parity: stream 0's drained schedule matches a batch run of the
    // same trace — the frames changed nothing.
    let trace = Workload::ALL[0].generate(LOADS, 0);
    let mut pf = pathfinder_core::PathfinderPrefetcher::new(template.config_for_stream(0))
        .expect("valid config");
    let schedule =
        pathfinder_prefetch::generate_prefetches(&mut pf, &trace, template.sim.max_prefetch_degree);
    let report = pathfinder_sim::Simulator::new(template.sim).run(&trace, &schedule);
    let pairs: Vec<(u64, u64)> = schedule
        .iter()
        .map(|r| (r.trigger_instr_id, r.block.0))
        .collect();
    assert_eq!(drained[0].schedule, pairs);
    assert_eq!(drained[0].report, report);
    assert_eq!(&drained[0].pf, pf.stats());
}

#[test]
fn malformed_frames_get_an_error_reply_not_a_dead_daemon() {
    use std::io::Write;
    use std::os::unix::net::UnixStream;

    let path = socket_path("garbage");
    let engine = Arc::new(ServeEngine::new(1));
    let daemon = {
        let engine = Arc::clone(&engine);
        let path = path.clone();
        std::thread::spawn(move || serve_unix(engine, &path))
    };

    // Wait for the daemon, then send a syntactically valid frame holding a
    // semantically garbage payload: the daemon must answer Error, not die.
    let mut raw = loop {
        match UnixStream::connect(&path) {
            Ok(s) => break s,
            Err(_) => std::thread::sleep(Duration::from_millis(10)),
        }
    };
    let garbage = [9u8, 9, 9];
    raw.write_all(&(garbage.len() as u32).to_le_bytes())
        .unwrap();
    raw.write_all(&garbage).unwrap();
    let reply = pathfinder_serve::wire::read_frame(&mut raw)
        .expect("reply frame")
        .expect("daemon replied");
    assert!(matches!(
        Response::decode(&reply).expect("decodable reply"),
        Response::Error(_)
    ));
    drop(raw);

    // The daemon still serves a well-formed client afterwards.
    let mut client =
        UnixClient::connect_with_retry(&path, Duration::from_secs(10)).expect("connect");
    let resp = client
        .request(&Request::Access {
            stream: 0,
            access: AccessRecord {
                instr_id: 0,
                pc: 0x400,
                vaddr: 0,
                depends_on_prev: false,
            },
        })
        .expect("access after garbage");
    assert!(matches!(resp, Response::Prefetches(_)));
    let Response::Drained(_) = client
        .request(&Request::Drain { stream: None })
        .expect("drain")
    else {
        panic!("drain failed")
    };
    daemon.join().unwrap().expect("clean exit");
}

#[test]
fn batch_frames_cross_shards_and_bad_batches_are_rejected() {
    use std::io::Write;
    use std::os::unix::net::UnixStream;

    let path = socket_path("batch");
    let engine = Arc::new(ServeEngine::new(2));
    let daemon = {
        let engine = Arc::clone(&engine);
        let path = path.clone();
        std::thread::spawn(move || serve_unix(engine, &path))
    };

    // A cross-stream batch frame over the wire: streams 0 and 1 land on
    // different shards, so this exercises the scatter/gather path
    // end-to-end and the per-slot reply ordering.
    let mut client =
        UnixClient::connect_with_retry(&path, Duration::from_secs(10)).expect("connect");
    let accesses: Vec<(u64, pathfinder_serve::AccessRecord)> = (0..64u64)
        .map(|i| {
            (
                i % 2,
                AccessRecord {
                    instr_id: i,
                    pc: 0x400 + (i % 2) * 8,
                    vaddr: i * 64,
                    depends_on_prev: false,
                },
            )
        })
        .collect();
    let resp = client
        .request(&Request::AccessBatch {
            accesses: accesses.clone(),
        })
        .expect("batch round trip");
    let Response::PrefetchBatch(parts) = resp else {
        panic!("batch reply was {resp:?}")
    };
    assert_eq!(parts.len(), accesses.len());
    // The last record per stream reads back via predict.
    for stream in 0..2u64 {
        let pos = accesses.iter().rposition(|(s, _)| *s == stream).unwrap();
        let Response::Prefetches(pred) = client
            .request(&Request::Predict { stream })
            .expect("predict round trip")
        else {
            panic!("predict failed")
        };
        assert_eq!(parts[pos], pred, "stream {stream} slot misaligned");
    }

    // A batch frame declaring more records than the cap gets an Error
    // reply on the same connection, which keeps serving afterwards.
    let mut raw = UnixStream::connect(&path).expect("raw connect");
    let mut payload = vec![7u8]; // REQ_ACCESS_BATCH
    payload.extend_from_slice(&(pathfinder_serve::MAX_BATCH_RECORDS as u32 + 1).to_le_bytes());
    raw.write_all(&(payload.len() as u32).to_le_bytes())
        .unwrap();
    raw.write_all(&payload).unwrap();
    let reply = pathfinder_serve::wire::read_frame(&mut raw)
        .expect("reply frame")
        .expect("daemon replied");
    assert!(matches!(
        Response::decode(&reply).expect("decodable reply"),
        Response::Error(_)
    ));

    // A truncated batch (count says 3, one record follows) also errors.
    let mut payload = vec![7u8];
    payload.extend_from_slice(&3u32.to_le_bytes());
    let one = Request::Access {
        stream: 0,
        access: AccessRecord {
            instr_id: 0,
            pc: 0,
            vaddr: 0,
            depends_on_prev: false,
        },
    }
    .encode();
    payload.extend_from_slice(&one[1..]); // strip the tag: stream + one record
    raw.write_all(&(payload.len() as u32).to_le_bytes())
        .unwrap();
    raw.write_all(&payload).unwrap();
    let reply = pathfinder_serve::wire::read_frame(&mut raw)
        .expect("reply frame")
        .expect("daemon replied");
    assert!(matches!(
        Response::decode(&reply).expect("decodable reply"),
        Response::Error(_)
    ));

    // An oversized frame header (beyond MAX_FRAME_LEN) kills just that
    // connection; the daemon itself keeps serving.
    let mut huge = UnixStream::connect(&path).expect("raw connect");
    huge.write_all(&((pathfinder_serve::wire::MAX_FRAME_LEN as u32) + 1).to_le_bytes())
        .unwrap();
    huge.write_all(&[0u8; 16]).unwrap();
    assert!(
        matches!(
            pathfinder_serve::wire::read_frame(&mut huge),
            Ok(None) | Err(_)
        ),
        "oversized-frame connection must die without a reply"
    );
    drop(huge);

    let Response::Drained(_) = client
        .request(&Request::Drain { stream: None })
        .expect("drain")
    else {
        panic!("drain failed")
    };
    daemon.join().unwrap().expect("clean exit");
}
