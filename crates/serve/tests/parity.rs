//! The tentpole invariant, pinned: any single stream driven through the
//! serving engine produces bit-identical prefetch schedules, timed-replay
//! reports, and prefetcher stats to a batch run of the same trace.
//!
//! Streams here carry real Table-5 trace prefixes and are deliberately
//! interleaved round-robin through a multi-shard engine, so the test also
//! pins cross-stream isolation: a neighbor stream on the same daemon must
//! not perturb anyone else's schedule. Runs under whatever kernel tier the
//! environment selects (CI repeats it with `PATHFINDER_FORCE_SCALAR=1`);
//! both the daemon and the batch comparator resolve the same tier, so the
//! invariant is tier-independent.

use pathfinder_core::PathfinderPrefetcher;
use pathfinder_prefetch::generate_prefetches;
use pathfinder_serve::{AccessRecord, Request, Response, ServeEngine, StreamTemplate};
use pathfinder_sim::{MemoryAccess, Simulator, Trace};
use pathfinder_traces::Workload;

fn record(a: &MemoryAccess) -> AccessRecord {
    AccessRecord {
        instr_id: a.instr_id,
        pc: a.pc.0,
        vaddr: a.vaddr.0,
        depends_on_prev: a.depends_on_prev,
    }
}

/// Batch-path results for one stream: `(schedule pairs, report, stats)`.
fn batch_run(
    template: &StreamTemplate,
    stream: u64,
    trace: &Trace,
) -> (
    Vec<(u64, u64)>,
    pathfinder_sim::SimReport,
    pathfinder_core::PathfinderStats,
) {
    let mut pf = PathfinderPrefetcher::new(template.config_for_stream(stream))
        .expect("default template config is valid");
    let schedule = generate_prefetches(&mut pf, trace, template.sim.max_prefetch_degree);
    let report = Simulator::new(template.sim).run(trace, &schedule);
    let pairs = schedule
        .iter()
        .map(|r| (r.trigger_instr_id, r.block.0))
        .collect();
    (pairs, report, *pf.stats())
}

#[test]
fn interleaved_streams_match_batch_runs_bit_for_bit() {
    const LOADS: usize = 2_000;
    let workloads = [Workload::Cc5, Workload::Sphinx, Workload::Mcf];
    let template = StreamTemplate::default();
    let traces: Vec<Trace> = workloads
        .iter()
        .enumerate()
        .map(|(i, w)| w.generate(LOADS, 0xA11CE ^ i as u64))
        .collect();

    let engine = ServeEngine::with_template(template.clone(), 4);

    // Round-robin interleave the three streams' accesses through the
    // daemon, checking each access's reply against the accumulating
    // expectation later via the drained schedule.
    let max_len = traces.iter().map(Trace::len).max().unwrap();
    for i in 0..max_len {
        for (stream, trace) in traces.iter().enumerate() {
            if let Some(a) = trace.accesses().get(i) {
                let resp = engine.request(Request::Access {
                    stream: stream as u64,
                    access: record(a),
                });
                assert!(
                    matches!(resp, Response::Prefetches(_)),
                    "access reply was {resp:?}"
                );
            }
        }
    }

    let Response::Drained(drained) = engine.request(Request::Drain { stream: None }) else {
        panic!("full drain failed")
    };
    assert_eq!(drained.len(), traces.len());

    for (stream, trace) in traces.iter().enumerate() {
        let served = &drained[stream];
        assert_eq!(served.stream, stream as u64);
        let (schedule, report, stats) = batch_run(&template, stream as u64, trace);
        assert!(
            !schedule.is_empty(),
            "workload {stream} produced no prefetches; the parity check would be vacuous"
        );
        assert_eq!(
            served.schedule, schedule,
            "stream {stream}: served schedule diverged from batch"
        );
        assert_eq!(
            served.report, report,
            "stream {stream}: served replay report diverged from batch"
        );
        assert_eq!(
            served.pf, stats,
            "stream {stream}: served prefetcher stats diverged from batch"
        );
    }
}

#[test]
fn batched_and_sticky_traffic_matches_batch_runs_bit_for_bit() {
    const LOADS: usize = 1_500;
    let workloads = [Workload::Cc5, Workload::Sphinx, Workload::Mcf];
    let template = StreamTemplate::default();
    let traces: Vec<Trace> = workloads
        .iter()
        .enumerate()
        .map(|(i, w)| w.generate(LOADS, 0xBEEF ^ i as u64))
        .collect();

    let engine = ServeEngine::with_template(template.clone(), 4);
    let mut sticky = engine.requester();

    // Alternate cross-stream `access_batch` frames (up to 7 records per
    // live stream, slots in stream order) with singleton bursts on the
    // sticky requester, until every trace is consumed.
    let mut cursors = vec![0usize; traces.len()];
    let mut round = 0usize;
    loop {
        let live: Vec<usize> = (0..traces.len())
            .filter(|&s| cursors[s] < traces[s].len())
            .collect();
        if live.is_empty() {
            break;
        }
        if round % 3 == 2 {
            let s = live[round % live.len()];
            for _ in 0..5 {
                if cursors[s] >= traces[s].len() {
                    break;
                }
                let resp = sticky.request(Request::Access {
                    stream: s as u64,
                    access: record(&traces[s].accesses()[cursors[s]]),
                });
                assert!(matches!(resp, Response::Prefetches(_)));
                cursors[s] += 1;
            }
        } else {
            let mut accesses: Vec<(u64, AccessRecord)> = Vec::new();
            for &s in &live {
                for _ in 0..7 {
                    if cursors[s] >= traces[s].len() {
                        break;
                    }
                    accesses.push((s as u64, record(&traces[s].accesses()[cursors[s]])));
                    cursors[s] += 1;
                }
            }
            let streams_in_frame: Vec<u64> = accesses.iter().map(|(s, _)| *s).collect();
            let n = accesses.len();
            let Response::PrefetchBatch(parts) = sticky.request(Request::AccessBatch { accesses })
            else {
                panic!("access_batch failed")
            };
            assert_eq!(parts.len(), n, "one reply slot per record");
            // Slot alignment: each stream's final record in the frame must
            // read back as that stream's current prediction.
            for &s in &live {
                if let Some(pos) = streams_in_frame.iter().rposition(|&x| x == s as u64) {
                    let Response::Prefetches(pred) =
                        engine.request(Request::Predict { stream: s as u64 })
                    else {
                        panic!("predict failed")
                    };
                    assert_eq!(parts[pos], pred, "stream {s}: slot misaligned");
                }
            }
        }
        round += 1;
    }

    let Response::Drained(drained) = engine.request(Request::Drain { stream: None }) else {
        panic!("full drain failed")
    };
    assert_eq!(drained.len(), traces.len());
    for (stream, trace) in traces.iter().enumerate() {
        let served = &drained[stream];
        let (schedule, report, stats) = batch_run(&template, stream as u64, trace);
        assert!(!schedule.is_empty(), "vacuous parity check");
        assert_eq!(
            served.schedule, schedule,
            "stream {stream}: batched/sticky schedule diverged from batch"
        );
        assert_eq!(served.report, report);
        assert_eq!(served.pf, stats);
    }
}

#[test]
fn per_stream_drain_matches_batch_too() {
    let template = StreamTemplate::default();
    let trace = Workload::Bfs10.generate(1_000, 7);
    let engine = ServeEngine::with_template(template.clone(), 2);

    // Same stream id on both sides; a second noisy stream shares the shard
    // space (id 3 lands on shard 1 with id 1 under 2 shards).
    for a in trace.iter() {
        engine.request(Request::Access {
            stream: 1,
            access: record(a),
        });
        engine.request(Request::Access {
            stream: 3,
            access: record(a),
        });
    }
    let Response::Drained(drained) = engine.request(Request::Drain { stream: Some(1) }) else {
        panic!("per-stream drain failed")
    };
    let (schedule, report, stats) = batch_run(&template, 1, &trace);
    assert_eq!(drained[0].schedule, schedule);
    assert_eq!(drained[0].report, report);
    assert_eq!(drained[0].pf, stats);
}
