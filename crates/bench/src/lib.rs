//! # pathfinder-bench
//!
//! Criterion benchmark harness for the PATHFINDER reproduction. Three bench
//! suites live under `benches/`:
//!
//! * `experiments` — one benchmark group per paper table/figure, running the
//!   corresponding harness experiment at bench scale (`cargo bench` must
//!   stay minutes, not hours; the `repro` binary runs the full-scale
//!   versions).
//! * `components` — microbenchmarks of the substrates: cache lookups, DRAM
//!   scheduling, the ROB model, SNN presentation (32-tick vs 1-tick), pixel
//!   encoding, and each prefetcher's per-access cost.
//! * `ablations` — the design-choice ablations DESIGN.md calls out
//!   (enlarged pixels, reorder, label count, ensemble priority).
//!
//! This library crate only exposes shared scale constants and trace helpers
//! so every suite benchmarks identical inputs.

#![warn(missing_docs)]

use pathfinder_sim::Trace;
use pathfinder_traces::Workload;

/// Loads per trace for experiment-level benches.
pub const BENCH_LOADS: usize = 4_000;
/// Loads per trace for microbenches that iterate per access.
pub const MICRO_LOADS: usize = 2_000;
/// Seed shared by all benches.
pub const BENCH_SEED: u64 = 42;

/// The benchmark trace: one representative delta-rich workload.
pub fn bench_trace() -> Trace {
    Workload::Soplex.generate(BENCH_LOADS, BENCH_SEED)
}

/// A smaller irregular trace for prefetcher microbenches.
pub fn micro_trace() -> Trace {
    Workload::Mcf.generate(MICRO_LOADS, BENCH_SEED)
}
