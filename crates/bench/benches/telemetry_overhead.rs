//! Telemetry overhead: what recording costs when it is compiled in, and
//! proof-by-measurement that it costs nothing when it is not.
//!
//! Run twice and compare:
//!
//! ```console
//! $ cargo bench -p pathfinder-bench --bench telemetry_overhead
//! $ cargo bench -p pathfinder-bench --bench telemetry_overhead --no-default-features
//! ```
//!
//! The first build compiles `pathfinder-telemetry/enabled` into every
//! instrumented crate; the second strips it, so every `counter!`/`timer!`
//! in the hot paths is an empty inline function and the `raw_ops` numbers
//! collapse to the cost of the loop itself. The `instrumented_replay`
//! group is the end-to-end check: its enabled-vs-disabled delta is the
//! whole-system price of telemetry on the simulator's hot path.

use criterion::{black_box, criterion_group, criterion_main, Criterion};

use pathfinder_bench::{micro_trace, BENCH_SEED};
use pathfinder_prefetch::{generate_prefetches, NextLinePrefetcher};
use pathfinder_sim::{SimConfig, Simulator};
use pathfinder_snn::{DiehlCookNetwork, SnnConfig};
use pathfinder_telemetry as telemetry;

/// Per-operation cost of each primitive (no-ops when compiled out).
fn raw_ops(c: &mut Criterion) {
    let mut group = c.benchmark_group("telemetry_raw_ops");
    group.bench_function("counter_add", |b| {
        b.iter(|| telemetry::record_counter(black_box("bench.counter"), black_box(1)))
    });
    group.bench_function("gauge_set", |b| {
        let mut v = 0.0f64;
        b.iter(|| {
            v += 3.0;
            telemetry::record_gauge(black_box("bench.gauge"), black_box(v))
        })
    });
    group.bench_function("histogram_record", |b| {
        let mut v = 1u64;
        b.iter(|| {
            v = v.wrapping_mul(6364136223846793005).wrapping_add(1);
            telemetry::record_histogram(black_box("bench.hist"), black_box(v >> 48))
        })
    });
    group.bench_function("scoped_timer", |b| {
        b.iter(|| {
            let _t = telemetry::timer!("bench.timer");
        })
    });
    group.finish();
}

/// Capture scope setup/teardown plus snapshot extraction.
fn capture_scope(c: &mut Criterion) {
    let mut group = c.benchmark_group("telemetry_capture");
    group.bench_function("empty_capture", |b| {
        b.iter(|| telemetry::capture(|| black_box(0u64)))
    });
    group.bench_function("capture_100_counters", |b| {
        b.iter(|| {
            telemetry::capture(|| {
                for _ in 0..100 {
                    telemetry::record_counter("bench.counter", 1);
                }
            })
        })
    });
    group.finish();
}

/// End-to-end: the instrumented hot paths at bench scale. Compare the same
/// benchmark between default and `--no-default-features` builds to price
/// the telemetry in context.
fn instrumented_replay(c: &mut Criterion) {
    let trace = micro_trace();
    let schedule = generate_prefetches(&mut NextLinePrefetcher::new(), &trace, 2);

    let mut group = c.benchmark_group("telemetry_instrumented");
    group.sample_size(20);
    group.bench_function("sim_replay", |b| {
        b.iter(|| Simulator::new(SimConfig::default()).run(black_box(&trace), &schedule))
    });
    group.bench_function("snn_present", |b| {
        let mut net =
            DiehlCookNetwork::new(SnnConfig::default(), BENCH_SEED).expect("valid config");
        let rates: Vec<f32> = (0..net.config().n_input)
            .map(|i| if i % 7 == 0 { 0.6 } else { 0.0 })
            .collect();
        b.iter(|| net.present(black_box(&rates), true))
    });
    group.finish();
}

criterion_group!(benches, raw_ops, capture_scope, instrumented_replay);
criterion_main!(benches);
