//! One benchmark group per paper table/figure, at bench scale.
//!
//! These benches measure the end-to-end cost of regenerating each
//! experiment's data (trace generation excluded where possible); the
//! full-scale numbers themselves come from the `repro` binary.

use criterion::{criterion_group, criterion_main, BatchSize, Criterion};

use pathfinder_bench::{bench_trace, BENCH_LOADS, BENCH_SEED};
use pathfinder_core::{PathfinderConfig, Readout, StdpDutyCycle, Variant};
use pathfinder_harness::experiments::{hardware, snn_analysis, trace_stats};
use pathfinder_harness::runner::{PrefetcherKind, Scenario};
use pathfinder_traces::Workload;

fn scenario() -> Scenario {
    Scenario {
        loads: BENCH_LOADS,
        seed: BENCH_SEED,
        ..Scenario::default()
    }
}

/// Figure 4: the full prefetcher line-up on one workload.
fn fig4_shootout(c: &mut Criterion) {
    let sc = scenario();
    let trace = bench_trace();
    let baseline = sc.baseline_misses(&trace);
    let mut group = c.benchmark_group("fig4_shootout");
    group.sample_size(10);
    for kind in PrefetcherKind::figure4_lineup() {
        group.bench_function(kind.label(), |b| {
            b.iter(|| sc.evaluate(&kind, Workload::Soplex, &trace, baseline))
        });
    }
    group.finish();
}

/// Figure 5: PATHFINDER across delta ranges.
fn fig5_delta_range(c: &mut Criterion) {
    let sc = scenario();
    let trace = bench_trace();
    let baseline = sc.baseline_misses(&trace);
    let mut group = c.benchmark_group("fig5_delta_range");
    group.sample_size(10);
    for range in [15u8, 31, 63] {
        let kind = PrefetcherKind::Pathfinder(PathfinderConfig {
            delta_range: range,
            ..PathfinderConfig::default()
        });
        group.bench_function(format!("range_{range}"), |b| {
            b.iter(|| sc.evaluate(&kind, Workload::Soplex, &trace, baseline))
        });
    }
    group.finish();
}

/// Figure 6: neuron-count / label-count grid.
fn fig6_neurons(c: &mut Criterion) {
    let sc = scenario();
    let trace = bench_trace();
    let baseline = sc.baseline_misses(&trace);
    let mut group = c.benchmark_group("fig6_neurons");
    group.sample_size(10);
    for labels in [1usize, 2] {
        for neurons in [10usize, 50, 100] {
            let kind = PrefetcherKind::Pathfinder(PathfinderConfig {
                neurons,
                labels_per_neuron: labels,
                ..PathfinderConfig::default()
            });
            group.bench_function(format!("{neurons}n_{labels}l"), |b| {
                b.iter(|| sc.evaluate(&kind, Workload::Soplex, &trace, baseline))
            });
        }
    }
    group.finish();
}

/// Figure 7: full 32-tick interval vs the 1-tick approximation.
fn fig7_one_tick(c: &mut Criterion) {
    let sc = scenario();
    let trace = bench_trace();
    let baseline = sc.baseline_misses(&trace);
    let mut group = c.benchmark_group("fig7_one_tick");
    group.sample_size(10);
    for (name, readout) in [
        ("ticks_32", Readout::FullInterval),
        ("tick_1", Readout::OneTick),
    ] {
        let kind = PrefetcherKind::Pathfinder(PathfinderConfig {
            readout,
            ..PathfinderConfig::default()
        });
        group.bench_function(name, |b| {
            b.iter(|| sc.evaluate(&kind, Workload::Soplex, &trace, baseline))
        });
    }
    group.finish();
}

/// Figure 8: STDP duty-cycling.
fn fig8_stdp_duty(c: &mut Criterion) {
    let sc = scenario();
    let trace = bench_trace();
    let baseline = sc.baseline_misses(&trace);
    let mut group = c.benchmark_group("fig8_stdp_duty");
    group.sample_size(10);
    for on in [50u64, 1000] {
        let kind = PrefetcherKind::Pathfinder(PathfinderConfig {
            stdp_duty: StdpDutyCycle::first_n_of_5000(on),
            ..PathfinderConfig::default()
        });
        group.bench_function(format!("first_{on}_of_5000"), |b| {
            b.iter(|| sc.evaluate(&kind, Workload::Soplex, &trace, baseline))
        });
    }
    let always = PrefetcherKind::Pathfinder(PathfinderConfig::default());
    group.bench_function("always_on", |b| {
        b.iter(|| sc.evaluate(&always, Workload::Soplex, &trace, baseline))
    });
    group.finish();
}

/// Figure 9: the implementation-variant ladder.
fn fig9_variants(c: &mut Criterion) {
    let sc = scenario();
    let trace = bench_trace();
    let baseline = sc.baseline_misses(&trace);
    let mut group = c.benchmark_group("fig9_variants");
    group.sample_size(10);
    for v in Variant::ALL {
        let kind = PrefetcherKind::Pathfinder(v.config());
        group.bench_function(v.label().replace(' ', "_"), |b| {
            b.iter(|| sc.evaluate(&kind, Workload::Soplex, &trace, baseline))
        });
    }
    group.finish();
}

/// Table 1: 1-tick argmax vs 32-tick winner match rate.
fn tab1_tick_match(c: &mut Criterion) {
    let sc = scenario();
    let mut group = c.benchmark_group("tab1_tick_match");
    group.sample_size(10);
    group.bench_function("one_workload", |b| {
        b.iter(|| snn_analysis::tab1(&sc, &[Workload::Soplex]))
    });
    group.finish();
}

/// Table 2 / Figure 3: the SNN learning demonstration.
fn tab2_snn_demo(c: &mut Criterion) {
    let mut group = c.benchmark_group("tab2_snn_demo");
    group.sample_size(10);
    group.bench_function("scripted_patterns", |b| {
        b.iter(|| snn_analysis::tab2(BENCH_SEED))
    });
    group.finish();
}

/// Tables 7 and 8: trace delta statistics.
fn tab7_tab8_stats(c: &mut Criterion) {
    let sc = scenario();
    let trace = bench_trace();
    let mut group = c.benchmark_group("tab7_tab8_stats");
    group.bench_function("tab7_ranges", |b| {
        b.iter(|| trace_stats::tab7(&sc, &[Workload::Soplex]))
    });
    group.bench_function("tab8_windows", |b| {
        b.iter_batched(
            || trace.clone(),
            |t| trace_stats::tab8_stats(&t),
            BatchSize::LargeInput,
        )
    });
    group.finish();
}

/// Table 9: the hardware model (cheap, but a regression canary).
fn tab9_hardware(c: &mut Criterion) {
    let mut group = c.benchmark_group("tab9_hardware");
    group.bench_function("full_render", |b| b.iter(hardware::tab9));
    group.finish();
}

criterion_group!(
    experiments,
    fig4_shootout,
    fig5_delta_range,
    fig6_neurons,
    fig7_one_tick,
    fig8_stdp_duty,
    fig9_variants,
    tab1_tick_match,
    tab2_snn_demo,
    tab7_tab8_stats,
    tab9_hardware
);
criterion_main!(experiments);
