//! Microbenchmarks of the individual substrates: the per-operation costs
//! that determine how far the full experiments scale.

use criterion::{criterion_group, criterion_main, BatchSize, Criterion};

use pathfinder_bench::{bench_trace, micro_trace, BENCH_SEED};
use pathfinder_core::{PathfinderConfig, PixelMatrixEncoder};
use pathfinder_prefetch::{
    generate_prefetches, BestOffsetPrefetcher, NextLinePrefetcher, PythiaPrefetcher,
    SisbPrefetcher, SppPrefetcher,
};
use pathfinder_sim::{
    Block, Cache, CacheConfig, CoreConfig, DramConfig, DramModel, MemoryAccess, PrefetchRequest,
    ReferenceSimulator, RobModel, SimConfig, Simulator, Trace,
};
use pathfinder_snn::DiehlCookNetwork;

/// Set-associative cache: hit and miss+fill paths.
fn cache_ops(c: &mut Criterion) {
    let mut group = c.benchmark_group("cache_ops");
    group.bench_function("hit", |b| {
        let mut cache = Cache::new(CacheConfig::new(2048, 16, 20));
        cache.fill(Block(42), false, 0);
        b.iter(|| cache.demand_access(Block(42)))
    });
    group.bench_function("miss_fill_evict", |b| {
        let mut cache = Cache::new(CacheConfig::new(64, 4, 1));
        let mut x = 0u64;
        b.iter(|| {
            x = x.wrapping_add(0x9E3779B97F4A7C15);
            let blk = Block(x >> 40);
            cache.demand_access(blk);
            cache.fill(blk, false, 0)
        })
    });
    group.finish();
}

/// DRAM scheduling: row hits vs conflicts vs prefetch shedding.
fn dram_ops(c: &mut Criterion) {
    let mut group = c.benchmark_group("dram_ops");
    group.bench_function("row_hit_stream", |b| {
        let mut dram = DramModel::new(DramConfig::default());
        let mut blk = 0u64;
        let mut now = 0u64;
        b.iter(|| {
            blk += 1;
            now = dram.service(Block(blk), now);
            now
        })
    });
    group.bench_function("scattered", |b| {
        let mut dram = DramModel::new(DramConfig::default());
        let mut x = 7u64;
        let mut now = 0u64;
        b.iter(|| {
            x = x.wrapping_mul(6364136223846793005).wrapping_add(1);
            now = dram.service(Block(x >> 30), now);
            now
        })
    });
    group.bench_function("prefetch_shed_check", |b| {
        let mut dram = DramModel::new(DramConfig::default());
        let mut blk = 0u64;
        b.iter(|| {
            blk += 97;
            dram.service_prefetch(Block(blk), 0)
        })
    });
    group.finish();
}

/// The analytic ROB model.
fn rob_model(c: &mut Criterion) {
    c.bench_function("rob_model_load", |b| {
        let mut rob = RobModel::new(CoreConfig::default());
        let mut id = 0u64;
        b.iter(|| {
            id += 4;
            let issue = rob.issue_cycle(id);
            rob.complete_load(id, issue, 100)
        })
    });
}

/// SNN presentation: the paper's central cost tradeoff (32-tick vs 1-tick).
fn snn_present(c: &mut Criterion) {
    let cfg = PathfinderConfig::default();
    let encoder = PixelMatrixEncoder::new(&cfg);
    let rates = encoder.encode(&[1, 2, 3]);
    let mut group = c.benchmark_group("snn_present");
    group.bench_function("full_32_tick", |b| {
        let mut net = DiehlCookNetwork::new(cfg.snn_config(), BENCH_SEED).unwrap();
        b.iter(|| net.present(&rates, true))
    });
    group.bench_function("one_tick", |b| {
        let mut net = DiehlCookNetwork::new(cfg.snn_config(), BENCH_SEED).unwrap();
        b.iter(|| net.present_one_tick(&rates, true))
    });
    group.bench_function("inference_only_32_tick", |b| {
        let mut net = DiehlCookNetwork::new(cfg.snn_config(), BENCH_SEED).unwrap();
        b.iter(|| net.present(&rates, false))
    });
    // The retained pre-rewrite kernel (`pathfinder_snn::reference`): the
    // "before" measurement the event-driven hot path is judged against.
    group.bench_function("reference_32_tick", |b| {
        let mut net = DiehlCookNetwork::new(cfg.snn_config(), BENCH_SEED).unwrap();
        b.iter(|| net.present_reference(&rates, true))
    });
    group.finish();
}

/// Pixel-matrix encoding variants.
fn pixel_encoding(c: &mut Criterion) {
    let mut group = c.benchmark_group("pixel_encoding");
    for (name, enlarged, reorder) in [
        ("plain", false, false),
        ("enlarged", true, false),
        ("enlarged_reordered", true, true),
    ] {
        let cfg = PathfinderConfig {
            enlarged_pixels: enlarged,
            reorder_pixels: reorder,
            ..PathfinderConfig::default()
        };
        let enc = PixelMatrixEncoder::new(&cfg);
        group.bench_function(name, |b| b.iter(|| enc.encode(&[1, 2, 3])));
    }
    group.finish();
}

/// Per-trace generation cost of each baseline prefetcher.
fn prefetcher_generation(c: &mut Criterion) {
    let trace = micro_trace();
    let mut group = c.benchmark_group("prefetcher_generation");
    group.sample_size(10);
    group.bench_function("nextline", |b| {
        b.iter_batched(
            NextLinePrefetcher::new,
            |mut p| generate_prefetches(&mut p, &trace, 2),
            BatchSize::SmallInput,
        )
    });
    group.bench_function("best_offset", |b| {
        b.iter_batched(
            || BestOffsetPrefetcher::new(2),
            |mut p| generate_prefetches(&mut p, &trace, 2),
            BatchSize::SmallInput,
        )
    });
    group.bench_function("spp", |b| {
        b.iter_batched(
            SppPrefetcher::new,
            |mut p| generate_prefetches(&mut p, &trace, 2),
            BatchSize::SmallInput,
        )
    });
    group.bench_function("sisb", |b| {
        b.iter_batched(
            || SisbPrefetcher::new(2),
            |mut p| generate_prefetches(&mut p, &trace, 2),
            BatchSize::SmallInput,
        )
    });
    group.bench_function("pythia", |b| {
        b.iter_batched(
            || PythiaPrefetcher::new(BENCH_SEED),
            |mut p| generate_prefetches(&mut p, &trace, 2),
            BatchSize::SmallInput,
        )
    });
    group.finish();
}

/// Timed replay throughput of the simulator itself.
fn simulator_replay(c: &mut Criterion) {
    let trace = bench_trace();
    let mut nl = NextLinePrefetcher::with_degree(2);
    let schedule = generate_prefetches(&mut nl, &trace, 2);
    let mut group = c.benchmark_group("simulator_replay");
    group.sample_size(10);
    group.bench_function("no_prefetch", |b| {
        b.iter(|| Simulator::new(SimConfig::default()).run(&trace, &[]))
    });
    group.bench_function("with_prefetch_schedule", |b| {
        b.iter(|| Simulator::new(SimConfig::default()).run(&trace, &schedule))
    });
    group.finish();
}

/// Flat-layout replay engine vs the retained reference engine
/// (`pathfinder_sim::reference`) on three access-pattern extremes. The two
/// engines produce bit-identical reports on every input (pinned by the
/// sim crate's `engine_equivalence` suite), so the per-pattern ratio is a
/// pure data-layout measurement.
fn sim_replay(c: &mut Criterion) {
    const LOADS: u64 = 30_000;
    // Demand-heavy: scattered blocks, almost every load misses to DRAM.
    let demand_trace: Trace = (0..LOADS)
        .map(|i| {
            let x = (i + 1).wrapping_mul(6364136223846793005);
            MemoryAccess::new(i * 4, 0x400, (x >> 24) << 6)
        })
        .collect();
    // Prefetch-heavy: a streaming trace with a dense next-line schedule.
    let stream_trace: Trace = (0..LOADS)
        .map(|i| MemoryAccess::new(i * 4, 0x400, 0x10_0000 + i * 64))
        .collect();
    let stream_schedule: Vec<PrefetchRequest> = stream_trace
        .accesses()
        .windows(2)
        .map(|w| PrefetchRequest::new(w[0].instr_id, w[1].block()))
        .collect();
    // Pointer-chasing: every load depends on the previous one, serializing
    // the replay through `prev_completion` and the MSHR tracker.
    let chase_trace: Trace = (0..LOADS)
        .map(|i| {
            let x = (i + 1).wrapping_mul(0x9E3779B97F4A7C15);
            MemoryAccess::new(i * 4, 0x400, (x >> 28) << 6).dependent()
        })
        .collect();

    let mut group = c.benchmark_group("sim_replay");
    group.sample_size(10);
    let cases: [(&str, &Trace, &[PrefetchRequest]); 3] = [
        ("demand_heavy", &demand_trace, &[]),
        ("prefetch_heavy", &stream_trace, &stream_schedule),
        ("pointer_chasing", &chase_trace, &[]),
    ];
    for (name, trace, schedule) in cases {
        group.bench_function(format!("flat/{name}"), |b| {
            b.iter(|| Simulator::new(SimConfig::default()).run(trace, schedule))
        });
        group.bench_function(format!("reference/{name}"), |b| {
            b.iter(|| ReferenceSimulator::new(SimConfig::default()).run(trace, schedule))
        });
    }
    group.finish();
}

criterion_group!(
    components,
    cache_ops,
    dram_ops,
    rob_model,
    snn_present,
    pixel_encoding,
    prefetcher_generation,
    simulator_replay,
    sim_replay
);
criterion_main!(components);
