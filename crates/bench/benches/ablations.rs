//! Ablation benches for the design choices DESIGN.md calls out: each
//! compares the quality-relevant configurations end-to-end so a regression
//! in any design lever shows up as a changed runtime/IPC profile.

use criterion::{criterion_group, criterion_main, Criterion};

use pathfinder_bench::{BENCH_LOADS, BENCH_SEED};
use pathfinder_core::{PathfinderConfig, PathfinderPrefetcher, Readout};
use pathfinder_prefetch::{
    generate_prefetches, EnsemblePrefetcher, NextLinePrefetcher, SisbPrefetcher,
};
use pathfinder_sim::{SimConfig, Simulator};
use pathfinder_traces::Workload;

fn ipc_of(cfg: PathfinderConfig, workload: Workload) -> f64 {
    let trace = workload.generate(BENCH_LOADS, BENCH_SEED);
    let mut pf = PathfinderPrefetcher::new(cfg).expect("valid config");
    let schedule = generate_prefetches(&mut pf, &trace, 2);
    Simulator::new(SimConfig::default())
        .run(&trace, &schedule)
        .ipc()
}

/// Enlarged-pixel encoding on/off (§3.4's sparsity fix).
fn ablate_enlarged_pixels(c: &mut Criterion) {
    let mut group = c.benchmark_group("ablate_enlarged_pixels");
    group.sample_size(10);
    for (name, enlarged) in [("off", false), ("on", true)] {
        group.bench_function(name, |b| {
            b.iter(|| {
                ipc_of(
                    PathfinderConfig {
                        enlarged_pixels: enlarged,
                        ..PathfinderConfig::default()
                    },
                    Workload::Soplex,
                )
            })
        });
    }
    group.finish();
}

/// Middle-row reorder shift on/off (§3.4's anti-aliasing fix).
fn ablate_reorder(c: &mut Criterion) {
    let mut group = c.benchmark_group("ablate_reorder");
    group.sample_size(10);
    for (name, reorder) in [("off", false), ("on", true)] {
        group.bench_function(name, |b| {
            b.iter(|| {
                ipc_of(
                    PathfinderConfig {
                        reorder_pixels: reorder,
                        ..PathfinderConfig::default()
                    },
                    Workload::Soplex,
                )
            })
        });
    }
    group.finish();
}

/// One vs two labels per neuron (§3.4 multi-degree).
fn ablate_labels(c: &mut Criterion) {
    let mut group = c.benchmark_group("ablate_labels");
    group.sample_size(10);
    for labels in [1usize, 2] {
        group.bench_function(format!("{labels}_label"), |b| {
            b.iter(|| {
                ipc_of(
                    PathfinderConfig {
                        labels_per_neuron: labels,
                        ..PathfinderConfig::default()
                    },
                    Workload::Soplex,
                )
            })
        });
    }
    group.finish();
}

/// Initial-access encoding on/off (§3.4 cold-page handling).
fn ablate_initial_access(c: &mut Criterion) {
    let mut group = c.benchmark_group("ablate_initial_access");
    group.sample_size(10);
    for (name, on) in [("wait_for_h_deltas", false), ("encode_initial", true)] {
        group.bench_function(name, |b| {
            b.iter(|| {
                ipc_of(
                    PathfinderConfig {
                        initial_access_encoding: on,
                        ..PathfinderConfig::default()
                    },
                    Workload::Soplex,
                )
            })
        });
    }
    group.finish();
}

/// Readout cost at equal quality target: 1-tick vs 32-tick.
fn ablate_readout(c: &mut Criterion) {
    let mut group = c.benchmark_group("ablate_readout");
    group.sample_size(10);
    for (name, readout) in [
        ("full_interval", Readout::FullInterval),
        ("one_tick", Readout::OneTick),
    ] {
        group.bench_function(name, |b| {
            b.iter(|| {
                ipc_of(
                    PathfinderConfig {
                        readout,
                        ..PathfinderConfig::default()
                    },
                    Workload::Soplex,
                )
            })
        });
    }
    group.finish();
}

/// Ensemble priority order: PATHFINDER-first (the paper's fixed policy) vs
/// SISB-first.
fn ablate_ensemble_priority(c: &mut Criterion) {
    let trace = Workload::Xalan.generate(BENCH_LOADS, BENCH_SEED);
    let mut group = c.benchmark_group("ablate_ensemble_priority");
    group.sample_size(10);
    group.bench_function("pathfinder_first", |b| {
        b.iter(|| {
            let pf = PathfinderPrefetcher::new(PathfinderConfig::default()).unwrap();
            let mut e = EnsemblePrefetcher::new("pf_first", 2)
                .with(pf)
                .with(NextLinePrefetcher::new())
                .with(SisbPrefetcher::new(2));
            let schedule = generate_prefetches(&mut e, &trace, 2);
            Simulator::new(SimConfig::default())
                .run(&trace, &schedule)
                .ipc()
        })
    });
    group.bench_function("sisb_first", |b| {
        b.iter(|| {
            let pf = PathfinderPrefetcher::new(PathfinderConfig::default()).unwrap();
            let mut e = EnsemblePrefetcher::new("sisb_first", 2)
                .with(SisbPrefetcher::new(2))
                .with(pf)
                .with(NextLinePrefetcher::new());
            let schedule = generate_prefetches(&mut e, &trace, 2);
            Simulator::new(SimConfig::default())
                .run(&trace, &schedule)
                .ipc()
        })
    });
    group.finish();
}

criterion_group!(
    ablations,
    ablate_enlarged_pixels,
    ablate_reorder,
    ablate_labels,
    ablate_initial_access,
    ablate_readout,
    ablate_ensemble_priority
);
criterion_main!(ablations);
