//! Immutable, owned views of recorded metrics, plus JSON and Markdown
//! rendering. Snapshots are always compiled (even with telemetry disabled)
//! so report-handling code needs no feature gates.

use std::collections::BTreeMap;
use std::fmt::Write as _;

use crate::histogram::Histogram;

/// Aggregate state of one histogram at snapshot time.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct HistogramSnapshot {
    /// Number of recorded samples.
    pub count: u64,
    /// Saturating sum of samples.
    pub sum: u64,
    /// Smallest sample (0 if empty).
    pub min: u64,
    /// Largest sample (0 if empty).
    pub max: u64,
    /// Approximate median (bucket upper bound).
    pub p50: u64,
    /// Approximate 99th percentile (bucket upper bound).
    pub p99: u64,
    /// Non-empty log₂ buckets as `(bucket_index, count)` pairs.
    pub buckets: Vec<(usize, u64)>,
}

impl HistogramSnapshot {
    /// Captures the aggregate state of `h`.
    pub fn from_histogram(h: &Histogram) -> Self {
        HistogramSnapshot {
            count: h.count(),
            sum: h.sum(),
            min: h.min().unwrap_or(0),
            max: h.max().unwrap_or(0),
            p50: h.quantile(0.5).unwrap_or(0),
            p99: h.quantile(0.99).unwrap_or(0),
            buckets: h
                .buckets()
                .iter()
                .enumerate()
                .filter(|(_, &n)| n > 0)
                .map(|(i, &n)| (i, n))
                .collect(),
        }
    }

    /// Mean sample value, or `None` if empty.
    pub fn mean(&self) -> Option<f64> {
        (self.count > 0).then(|| self.sum as f64 / self.count as f64)
    }
}

/// Aggregate state of one timer: span count and total wall-clock time.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct TimerSnapshot {
    /// Number of completed spans.
    pub count: u64,
    /// Total time across spans, nanoseconds (saturating).
    pub total_ns: u64,
}

impl TimerSnapshot {
    /// Mean span duration in nanoseconds, or `None` if no spans completed.
    pub fn mean_ns(&self) -> Option<f64> {
        (self.count > 0).then(|| self.total_ns as f64 / self.count as f64)
    }

    /// Total time in seconds.
    pub fn total_secs(&self) -> f64 {
        self.total_ns as f64 / 1e9
    }
}

/// Every metric a recorder held at one point in time, keyed by metric name.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct Snapshot {
    /// Counter values.
    pub counters: BTreeMap<String, u64>,
    /// Gauge values (last write wins).
    pub gauges: BTreeMap<String, f64>,
    /// Histogram aggregates.
    pub histograms: BTreeMap<String, HistogramSnapshot>,
    /// Timer aggregates.
    pub timers: BTreeMap<String, TimerSnapshot>,
}

impl Snapshot {
    /// Value of counter `name`, 0 if never recorded.
    pub fn counter(&self, name: &str) -> u64 {
        self.counters.get(name).copied().unwrap_or(0)
    }

    /// Value of gauge `name`, if set.
    pub fn gauge(&self, name: &str) -> Option<f64> {
        self.gauges.get(name).copied()
    }

    /// Aggregate of histogram `name`, if recorded.
    pub fn histogram(&self, name: &str) -> Option<&HistogramSnapshot> {
        self.histograms.get(name)
    }

    /// Aggregate of timer `name`, if recorded.
    pub fn timer(&self, name: &str) -> Option<&TimerSnapshot> {
        self.timers.get(name)
    }

    /// True when no metric of any kind was recorded.
    pub fn is_empty(&self) -> bool {
        self.counters.is_empty()
            && self.gauges.is_empty()
            && self.histograms.is_empty()
            && self.timers.is_empty()
    }

    /// Folds `other` into this snapshot: counters/timers/histogram stats
    /// add, gauges take `other`'s value (last write wins).
    pub fn merge(&mut self, other: &Snapshot) {
        for (k, v) in &other.counters {
            *self.counters.entry(k.clone()).or_insert(0) += v;
        }
        for (k, v) in &other.gauges {
            self.gauges.insert(k.clone(), *v);
        }
        for (k, h) in &other.histograms {
            let dst = self.histograms.entry(k.clone()).or_default();
            if dst.count == 0 {
                *dst = h.clone();
            } else if h.count > 0 {
                dst.min = dst.min.min(h.min);
                dst.max = dst.max.max(h.max);
                dst.sum = dst.sum.saturating_add(h.sum);
                dst.count += h.count;
                // Re-derive merged percentiles from the combined buckets.
                let mut merged: BTreeMap<usize, u64> = dst.buckets.iter().copied().collect();
                for &(i, n) in &h.buckets {
                    *merged.entry(i).or_insert(0) += n;
                }
                dst.buckets = merged.into_iter().collect();
                dst.p50 = approx_quantile(&dst.buckets, dst.count, 0.5).min(dst.max);
                dst.p99 = approx_quantile(&dst.buckets, dst.count, 0.99).min(dst.max);
            }
        }
        for (k, t) in &other.timers {
            let dst = self.timers.entry(k.clone()).or_default();
            dst.count += t.count;
            dst.total_ns = dst.total_ns.saturating_add(t.total_ns);
        }
    }

    /// Renders the snapshot as a self-contained JSON object.
    pub fn to_json(&self) -> String {
        let mut out = String::with_capacity(1024);
        self.write_json(&mut out);
        out
    }

    /// Writes the JSON rendering into `out` (used by report emitters that
    /// nest snapshots inside a larger document).
    pub fn write_json(&self, out: &mut String) {
        out.push('{');
        out.push_str("\"counters\":{");
        for (i, (k, v)) in self.counters.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            json_string(out, k);
            let _ = write!(out, ":{v}");
        }
        out.push_str("},\"gauges\":{");
        for (i, (k, v)) in self.gauges.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            json_string(out, k);
            out.push(':');
            json_f64(out, *v);
        }
        out.push_str("},\"histograms\":{");
        for (i, (k, h)) in self.histograms.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            json_string(out, k);
            let _ = write!(
                out,
                ":{{\"count\":{},\"sum\":{},\"min\":{},\"max\":{},\"p50\":{},\"p99\":{},\"buckets\":[",
                h.count, h.sum, h.min, h.max, h.p50, h.p99
            );
            for (j, (bucket, n)) in h.buckets.iter().enumerate() {
                if j > 0 {
                    out.push(',');
                }
                let _ = write!(out, "[{bucket},{n}]");
            }
            out.push_str("]}");
        }
        out.push_str("},\"timers\":{");
        for (i, (k, t)) in self.timers.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            json_string(out, k);
            let _ = write!(
                out,
                ":{{\"count\":{},\"total_ns\":{}}}",
                t.count, t.total_ns
            );
        }
        out.push_str("}}");
    }

    /// Renders the snapshot as Markdown tables (one per metric kind),
    /// skipping empty kinds. Returns an empty string for an empty snapshot.
    pub fn to_markdown(&self) -> String {
        let mut out = String::new();
        if !self.counters.is_empty() {
            out.push_str("| counter | value |\n|---|---:|\n");
            for (k, v) in &self.counters {
                let _ = writeln!(out, "| `{k}` | {v} |");
            }
            out.push('\n');
        }
        if !self.gauges.is_empty() {
            out.push_str("| gauge | value |\n|---|---:|\n");
            for (k, v) in &self.gauges {
                let _ = writeln!(out, "| `{k}` | {v:.4} |");
            }
            out.push('\n');
        }
        if !self.histograms.is_empty() {
            out.push_str(
                "| histogram | count | mean | p50 | p99 | max |\n|---|---:|---:|---:|---:|---:|\n",
            );
            for (k, h) in &self.histograms {
                let _ = writeln!(
                    out,
                    "| `{k}` | {} | {:.1} | {} | {} | {} |",
                    h.count,
                    h.mean().unwrap_or(0.0),
                    h.p50,
                    h.p99,
                    h.max
                );
            }
            out.push('\n');
        }
        if !self.timers.is_empty() {
            out.push_str("| timer | spans | total | mean |\n|---|---:|---:|---:|\n");
            for (k, t) in &self.timers {
                let _ = writeln!(
                    out,
                    "| `{k}` | {} | {} | {} |",
                    t.count,
                    human_ns(t.total_ns),
                    human_ns(t.mean_ns().unwrap_or(0.0) as u64)
                );
            }
            out.push('\n');
        }
        out
    }
}

fn approx_quantile(buckets: &[(usize, u64)], count: u64, q: f64) -> u64 {
    let target = (q * count as f64).ceil().max(1.0) as u64;
    let mut cumulative = 0u64;
    for &(i, n) in buckets {
        cumulative += n;
        if cumulative >= target {
            return crate::histogram::bucket_upper_bound(i);
        }
    }
    buckets
        .last()
        .map(|&(i, _)| crate::histogram::bucket_upper_bound(i))
        .unwrap_or(0)
}

pub(crate) use crate::json::{write_f64 as json_f64, write_string as json_string};

/// Formats nanoseconds with an adaptive unit for human-facing tables.
fn human_ns(ns: u64) -> String {
    match ns {
        0..=999 => format!("{ns} ns"),
        1_000..=999_999 => format!("{:.1} us", ns as f64 / 1e3),
        1_000_000..=999_999_999 => format!("{:.1} ms", ns as f64 / 1e6),
        _ => format!("{:.2} s", ns as f64 / 1e9),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample_snapshot() -> Snapshot {
        let mut h = Histogram::new();
        for v in [1u64, 2, 3, 900] {
            h.record(v);
        }
        Snapshot {
            counters: [("pf.issued".to_string(), 42u64)].into_iter().collect(),
            gauges: [("occupancy".to_string(), 0.75f64)].into_iter().collect(),
            histograms: [("depth".to_string(), HistogramSnapshot::from_histogram(&h))]
                .into_iter()
                .collect(),
            timers: [(
                "phase".to_string(),
                TimerSnapshot {
                    count: 2,
                    total_ns: 3_000,
                },
            )]
            .into_iter()
            .collect(),
        }
    }

    /// The shared minimal JSON reader (`crate::json::parse`) verifies that
    /// `to_json` emits a document a standard parser would accept and that
    /// values survive the trip.
    use crate::json;

    #[test]
    fn json_round_trips_through_a_parser() {
        let snap = sample_snapshot();
        let parsed = json::parse(&snap.to_json()).expect("to_json emits valid JSON");
        let json::Value::Object(root) = parsed else {
            panic!("root must be an object");
        };
        let json::Value::Object(counters) = &root["counters"] else {
            panic!("counters must be an object");
        };
        assert_eq!(counters["pf.issued"], json::Value::Number(42.0));
        let json::Value::Object(gauges) = &root["gauges"] else {
            panic!("gauges must be an object");
        };
        assert_eq!(gauges["occupancy"], json::Value::Number(0.75));
        let json::Value::Object(hists) = &root["histograms"] else {
            panic!("histograms must be an object");
        };
        let json::Value::Object(depth) = &hists["depth"] else {
            panic!("histogram entry must be an object");
        };
        assert_eq!(depth["count"], json::Value::Number(4.0));
        assert_eq!(depth["sum"], json::Value::Number(906.0));
        let json::Value::Object(timers) = &root["timers"] else {
            panic!("timers must be an object");
        };
        let json::Value::Object(phase) = &timers["phase"] else {
            panic!("timer entry must be an object");
        };
        assert_eq!(phase["total_ns"], json::Value::Number(3000.0));
    }

    #[test]
    fn json_escapes_and_non_finite() {
        let mut s = String::new();
        json_string(&mut s, "a\"b\\c\nd\u{1}");
        assert_eq!(s, "\"a\\\"b\\\\c\\nd\\u0001\"");
        let mut f = String::new();
        json_f64(&mut f, f64::NAN);
        json_f64(&mut f, 2.5);
        assert_eq!(f, "null2.5");
    }

    #[test]
    fn empty_snapshot_renders() {
        let snap = Snapshot::default();
        assert!(snap.is_empty());
        assert_eq!(
            snap.to_json(),
            r#"{"counters":{},"gauges":{},"histograms":{},"timers":{}}"#
        );
        assert_eq!(snap.to_markdown(), "");
    }

    #[test]
    fn markdown_lists_all_kinds() {
        let md = sample_snapshot().to_markdown();
        assert!(md.contains("| `pf.issued` | 42 |"));
        assert!(md.contains("| `occupancy` | 0.7500 |"));
        assert!(md.contains("`depth`"));
        assert!(md.contains("| `phase` | 2 | 3.0 us | 1.5 us |"));
    }

    #[test]
    fn merge_accumulates_across_snapshots() {
        let mut a = sample_snapshot();
        let b = sample_snapshot();
        a.merge(&b);
        assert_eq!(a.counter("pf.issued"), 84);
        assert_eq!(a.gauge("occupancy"), Some(0.75));
        let h = a.histogram("depth").unwrap();
        assert_eq!(h.count, 8);
        assert_eq!(h.sum, 1812);
        assert_eq!(h.max, 900);
        assert!(h.p50 <= h.p99 && h.p99 <= h.max);
        assert_eq!(a.timer("phase").map(|t| t.count), Some(4));
        // Merging into an empty snapshot copies wholesale.
        let mut empty = Snapshot::default();
        empty.merge(&b);
        assert_eq!(empty.histogram("depth").unwrap().count, 4);
    }
}
