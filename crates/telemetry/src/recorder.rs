//! The [`Recorder`] sink trait and its two built-in implementations.

use std::cell::RefCell;
use std::collections::BTreeMap;

use crate::histogram::Histogram;
use crate::snapshot::{HistogramSnapshot, Snapshot, TimerSnapshot};

/// A sink for telemetry events.
///
/// Metric names are `&'static str` so hot paths never allocate; recorders
/// use interior mutability because instrumented code only holds a shared
/// reference to the current recorder.
pub trait Recorder {
    /// Adds `delta` to counter `name`.
    fn counter_add(&self, name: &'static str, delta: u64);
    /// Sets gauge `name` to `value` (last write wins).
    fn gauge_set(&self, name: &'static str, value: f64);
    /// Records `value` into histogram `name`.
    fn histogram_record(&self, name: &'static str, value: u64);
    /// Records `n` identical samples of `value` into histogram `name`,
    /// equivalent to `n` calls of [`Recorder::histogram_record`] (and a
    /// no-op when `n` is zero — the histogram entry is not even created).
    /// The default implementation loops; aggregating recorders should
    /// override it with a constant-time bucket update.
    fn histogram_record_n(&self, name: &'static str, value: u64, n: u64) {
        for _ in 0..n {
            self.histogram_record(name, value);
        }
    }
    /// Adds one span of `elapsed_ns` to timer `name`.
    fn timer_add_ns(&self, name: &'static str, elapsed_ns: u64);
    /// Returns the current aggregate state.
    fn snapshot(&self) -> Snapshot;
    /// Clears all recorded state.
    fn reset(&self);
}

/// Discards everything. Useful as an explicit "off" sink in tests.
#[derive(Debug, Default, Clone, Copy)]
pub struct NoopRecorder;

impl Recorder for NoopRecorder {
    fn counter_add(&self, _name: &'static str, _delta: u64) {}
    fn gauge_set(&self, _name: &'static str, _value: f64) {}
    fn histogram_record(&self, _name: &'static str, _value: u64) {}
    fn histogram_record_n(&self, _name: &'static str, _value: u64, _n: u64) {}
    fn timer_add_ns(&self, _name: &'static str, _elapsed_ns: u64) {}
    fn snapshot(&self) -> Snapshot {
        Snapshot::default()
    }
    fn reset(&self) {}
}

#[derive(Debug, Default)]
struct Store {
    counters: BTreeMap<&'static str, u64>,
    gauges: BTreeMap<&'static str, f64>,
    histograms: BTreeMap<&'static str, Histogram>,
    timers: BTreeMap<&'static str, TimerSnapshot>,
}

/// In-memory single-threaded aggregation, the default sink. `RefCell`
/// suffices because a recorder is only ever current on one thread.
#[derive(Debug, Default)]
pub struct MemoryRecorder {
    store: RefCell<Store>,
}

impl MemoryRecorder {
    /// Creates an empty recorder.
    pub fn new() -> Self {
        Self::default()
    }
}

impl Recorder for MemoryRecorder {
    fn counter_add(&self, name: &'static str, delta: u64) {
        *self.store.borrow_mut().counters.entry(name).or_insert(0) += delta;
    }

    fn gauge_set(&self, name: &'static str, value: f64) {
        self.store.borrow_mut().gauges.insert(name, value);
    }

    fn histogram_record(&self, name: &'static str, value: u64) {
        self.store
            .borrow_mut()
            .histograms
            .entry(name)
            .or_default()
            .record(value);
    }

    fn histogram_record_n(&self, name: &'static str, value: u64, n: u64) {
        if n == 0 {
            return;
        }
        self.store
            .borrow_mut()
            .histograms
            .entry(name)
            .or_default()
            .record_n(value, n);
    }

    fn timer_add_ns(&self, name: &'static str, elapsed_ns: u64) {
        let mut store = self.store.borrow_mut();
        let t = store.timers.entry(name).or_default();
        t.count += 1;
        t.total_ns = t.total_ns.saturating_add(elapsed_ns);
    }

    fn snapshot(&self) -> Snapshot {
        let store = self.store.borrow();
        Snapshot {
            counters: store
                .counters
                .iter()
                .map(|(&k, &v)| (k.to_string(), v))
                .collect(),
            gauges: store
                .gauges
                .iter()
                .map(|(&k, &v)| (k.to_string(), v))
                .collect(),
            histograms: store
                .histograms
                .iter()
                .map(|(&k, h)| (k.to_string(), HistogramSnapshot::from_histogram(h)))
                .collect(),
            timers: store
                .timers
                .iter()
                .map(|(&k, t)| (k.to_string(), t.clone()))
                .collect(),
        }
    }

    fn reset(&self) {
        *self.store.borrow_mut() = Store::default();
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn memory_recorder_aggregates() {
        let r = MemoryRecorder::new();
        r.counter_add("c", 2);
        r.counter_add("c", 3);
        r.gauge_set("g", 1.0);
        r.gauge_set("g", 2.5);
        r.histogram_record("h", 10);
        r.timer_add_ns("t", 100);
        r.timer_add_ns("t", 50);
        let snap = r.snapshot();
        assert_eq!(snap.counter("c"), 5);
        assert_eq!(snap.gauge("g"), Some(2.5));
        assert_eq!(snap.histogram("h").map(|h| h.count), Some(1));
        let t = snap.timer("t").unwrap();
        assert_eq!((t.count, t.total_ns), (2, 150));
        r.reset();
        assert!(r.snapshot().is_empty());
    }

    #[test]
    fn noop_recorder_discards() {
        let r = NoopRecorder;
        r.counter_add("c", 5);
        r.histogram_record("h", 1);
        assert!(r.snapshot().is_empty());
    }
}
