//! # pathfinder-telemetry
//!
//! Zero-cost observability for the PATHFINDER reproduction. The paper's
//! evaluation reasons about *internal* signals — per-neuron spike counts
//! (§3.6, Table 2), STDP update volume (§3.4's duty-cycling), confidence
//! transitions in the Inference Table (§3.3–3.4), and memory-system queue
//! behaviour (§4.1, Table 3) — and this crate is how the workspace surfaces
//! them without taxing the hot paths that produce them.
//!
//! ## Model
//!
//! Four instrument kinds, all keyed by `&'static str` metric names:
//!
//! * **counters** — monotonically increasing `u64` event counts
//!   ([`counter!`]);
//! * **gauges** — last-write-wins `f64` levels ([`gauge!`]);
//! * **histograms** — log₂-bucketed `u64` value distributions with
//!   count/sum/min/max and approximate percentiles ([`histogram!`]);
//! * **timers** — scoped wall-clock spans aggregated as count + total
//!   nanoseconds ([`timer!`], [`time!`]). Timers nest naturally: each guard
//!   measures its own span.
//!
//! Events flow to the thread's current [`Recorder`]. The default recorder is
//! an always-present per-thread [`MemoryRecorder`]; [`capture`] pushes a
//! fresh one for the duration of a closure and returns its [`Snapshot`],
//! which is how the harness scopes metrics to a single prefetcher run even
//! when workloads evaluate on parallel threads.
//!
//! ## Zero cost when disabled
//!
//! All recording entry points are compiled behind the `enabled` cargo
//! feature (off by default). With the feature off they are empty
//! `#[inline(always)]` functions, so instrumented code costs nothing — no
//! branch, no thread-local access (verified by
//! `crates/bench/benches/telemetry_overhead.rs`). Downstream crates expose
//! their own `telemetry` feature forwarding to
//! `pathfinder-telemetry/enabled`; `pathfinder-harness` turns it on by
//! default so `repro` emits run reports out of the box.
//!
//! ## Quick start
//!
//! ```
//! use pathfinder_telemetry as telemetry;
//!
//! fn hot_loop() {
//!     let _span = telemetry::timer!("demo.phase");
//!     for i in 0..100u64 {
//!         telemetry::counter!("demo.events", 1);
//!         telemetry::histogram!("demo.queue_depth", i % 7);
//!     }
//! }
//!
//! let ((), snapshot) = telemetry::capture(hot_loop);
//! // With the `enabled` feature on, the snapshot now holds the metrics;
//! // with it off, recording is compiled out and the snapshot is empty.
//! if telemetry::enabled() {
//!     assert_eq!(snapshot.counter("demo.events"), 100);
//!     println!("{}", snapshot.to_json());
//! } else {
//!     assert!(snapshot.is_empty());
//! }
//! ```

#![warn(missing_docs)]

mod histogram;
pub mod json;
mod recorder;
mod snapshot;

pub use histogram::{bucket_index, bucket_upper_bound, Histogram, N_BUCKETS};
pub use recorder::{MemoryRecorder, NoopRecorder, Recorder};
pub use snapshot::{HistogramSnapshot, Snapshot, TimerSnapshot};

/// Whether telemetry recording is compiled in (the `enabled` feature).
#[inline(always)]
pub const fn enabled() -> bool {
    cfg!(feature = "enabled")
}

#[cfg(feature = "enabled")]
mod active {
    use super::recorder::{MemoryRecorder, Recorder};
    use super::snapshot::Snapshot;
    use std::cell::RefCell;
    use std::rc::Rc;

    thread_local! {
        /// Stack of recorders; the innermost receives events. The bottom
        /// ambient recorder always exists so uncaptured code still records.
        static STACK: RefCell<Vec<Rc<dyn Recorder>>> =
            RefCell::new(vec![Rc::new(MemoryRecorder::new())]);
    }

    pub(super) fn with_current<T>(f: impl FnOnce(&dyn Recorder) -> T) -> T {
        STACK.with(|s| {
            let stack = s.borrow();
            let rec = stack.last().expect("recorder stack never empty").clone();
            drop(stack); // release before user code: recorders may re-enter
            f(rec.as_ref())
        })
    }

    pub(super) fn push(rec: Rc<dyn Recorder>) {
        STACK.with(|s| s.borrow_mut().push(rec));
    }

    pub(super) fn pop() {
        STACK.with(|s| {
            let mut stack = s.borrow_mut();
            if stack.len() > 1 {
                stack.pop();
            }
        });
    }

    pub(super) fn capture<T>(f: impl FnOnce() -> T) -> (T, Snapshot) {
        let rec = Rc::new(MemoryRecorder::new());
        push(rec.clone());
        // Pop even on unwind so a panicking run cannot poison the stack.
        struct PopGuard;
        impl Drop for PopGuard {
            fn drop(&mut self) {
                pop();
            }
        }
        let guard = PopGuard;
        let out = f();
        drop(guard);
        (out, rec.snapshot())
    }

    pub(super) fn snapshot_ambient() -> Snapshot {
        STACK.with(|s| {
            let stack = s.borrow();
            let rec = stack.first().expect("ambient recorder exists");
            rec.snapshot()
        })
    }

    pub(super) fn reset_ambient() {
        STACK.with(|s| {
            let stack = s.borrow();
            stack.first().expect("ambient recorder exists").reset();
        });
    }
}

/// Records `delta` onto counter `name`. Prefer the [`counter!`] macro.
#[inline(always)]
pub fn record_counter(name: &'static str, delta: u64) {
    #[cfg(feature = "enabled")]
    active::with_current(|r| r.counter_add(name, delta));
    #[cfg(not(feature = "enabled"))]
    let _ = (name, delta);
}

/// Sets gauge `name` to `value`. Prefer the [`gauge!`] macro.
#[inline(always)]
pub fn record_gauge(name: &'static str, value: f64) {
    #[cfg(feature = "enabled")]
    active::with_current(|r| r.gauge_set(name, value));
    #[cfg(not(feature = "enabled"))]
    let _ = (name, value);
}

/// Records `value` into histogram `name`. Prefer the [`histogram!`] macro.
#[inline(always)]
pub fn record_histogram(name: &'static str, value: u64) {
    #[cfg(feature = "enabled")]
    active::with_current(|r| r.histogram_record(name, value));
    #[cfg(not(feature = "enabled"))]
    let _ = (name, value);
}

/// Records `n` identical samples of `value` into histogram `name` in one
/// recorder round trip — bit-identical aggregates to `n` calls of
/// [`record_histogram`], and a no-op for `n == 0` (the histogram entry is
/// not created). Prefer the [`histogram_n!`] macro. This is the flush half
/// of the "tally locally, record once" pattern the replay engine uses for
/// per-access bounded-domain values like MSHR occupancy.
#[inline(always)]
pub fn record_histogram_n(name: &'static str, value: u64, n: u64) {
    #[cfg(feature = "enabled")]
    active::with_current(|r| r.histogram_record_n(name, value, n));
    #[cfg(not(feature = "enabled"))]
    let _ = (name, value, n);
}

/// Adds one `elapsed_ns`-long span to timer `name`. Prefer [`timer!`].
#[inline(always)]
pub fn record_timer_ns(name: &'static str, elapsed_ns: u64) {
    #[cfg(feature = "enabled")]
    active::with_current(|r| r.timer_add_ns(name, elapsed_ns));
    #[cfg(not(feature = "enabled"))]
    let _ = (name, elapsed_ns);
}

/// A scoped wall-clock timer: measures from construction to drop and records
/// the span onto its metric. Obtain via [`timer!`]; guards nest freely (each
/// measures its own span).
#[must_use = "a timer records its span when dropped; binding it to `_` drops immediately"]
pub struct ScopedTimer {
    #[cfg(feature = "enabled")]
    name: &'static str,
    #[cfg(feature = "enabled")]
    start: std::time::Instant,
}

impl ScopedTimer {
    /// Starts a timer for `name`.
    #[inline(always)]
    pub fn start(name: &'static str) -> Self {
        #[cfg(not(feature = "enabled"))]
        let _ = name;
        ScopedTimer {
            #[cfg(feature = "enabled")]
            name,
            #[cfg(feature = "enabled")]
            start: std::time::Instant::now(),
        }
    }
}

impl Drop for ScopedTimer {
    #[inline(always)]
    fn drop(&mut self) {
        #[cfg(feature = "enabled")]
        record_timer_ns(self.name, self.start.elapsed().as_nanos() as u64);
    }
}

/// Runs `f` with a fresh recorder installed for the current thread and
/// returns `f`'s result together with the metrics it recorded.
///
/// With telemetry disabled the closure still runs; the snapshot is empty.
pub fn capture<T>(f: impl FnOnce() -> T) -> (T, Snapshot) {
    #[cfg(feature = "enabled")]
    {
        active::capture(f)
    }
    #[cfg(not(feature = "enabled"))]
    {
        (f(), Snapshot::default())
    }
}

/// Snapshot of the thread's ambient (bottom-of-stack) recorder: everything
/// recorded on this thread outside any [`capture`] scope.
pub fn snapshot() -> Snapshot {
    #[cfg(feature = "enabled")]
    {
        active::snapshot_ambient()
    }
    #[cfg(not(feature = "enabled"))]
    {
        Snapshot::default()
    }
}

/// Clears the thread's ambient recorder.
pub fn reset() {
    #[cfg(feature = "enabled")]
    active::reset_ambient();
}

/// Increments a named counter: `counter!("snn.spikes", n)`.
#[macro_export]
macro_rules! counter {
    ($name:expr, $delta:expr) => {
        $crate::record_counter($name, $delta as u64)
    };
    ($name:expr) => {
        $crate::record_counter($name, 1)
    };
}

/// Sets a named gauge: `gauge!("pf.table_occupancy", v)`.
#[macro_export]
macro_rules! gauge {
    ($name:expr, $value:expr) => {
        $crate::record_gauge($name, $value as f64)
    };
}

/// Records a value into a named log-bucketed histogram:
/// `histogram!("sim.dram.queue_depth", depth)`.
#[macro_export]
macro_rules! histogram {
    ($name:expr, $value:expr) => {
        $crate::record_histogram($name, $value as u64)
    };
}

/// Records `n` identical histogram samples in one round trip:
/// `histogram_n!("sim.mshr.occupancy", depth, count)`. Equivalent to `n`
/// [`histogram!`] calls; a no-op when `n` is zero.
#[macro_export]
macro_rules! histogram_n {
    ($name:expr, $value:expr, $n:expr) => {
        $crate::record_histogram_n($name, $value as u64, $n as u64)
    };
}

/// Starts a scoped wall-clock timer; the span records when the guard drops:
/// `let _t = timer!("harness.replay");`
#[macro_export]
macro_rules! timer {
    ($name:expr) => {
        $crate::ScopedTimer::start($name)
    };
}

/// Times an expression: `let x = time!("phase.train", { train() });`
#[macro_export]
macro_rules! time {
    ($name:expr, $e:expr) => {{
        let __timer = $crate::ScopedTimer::start($name);
        let __out = $e;
        drop(__timer);
        __out
    }};
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn disabled_build_records_nothing() {
        if enabled() {
            return; // covered by the enabled-feature tests instead
        }
        let ((), snap) = capture(|| {
            counter!("x", 5);
            histogram!("h", 3);
            gauge!("g", 1.5);
            let _t = timer!("t");
        });
        assert!(snap.is_empty());
    }

    #[cfg(feature = "enabled")]
    #[test]
    fn capture_scopes_metrics() {
        let ((), outer) = capture(|| {
            counter!("a", 1);
            let ((), inner) = capture(|| counter!("a", 10));
            assert_eq!(inner.counter("a"), 10);
            counter!("a", 2);
        });
        assert_eq!(outer.counter("a"), 3, "inner capture must not leak out");
    }

    #[cfg(feature = "enabled")]
    #[test]
    fn capture_pops_recorder_on_panic() {
        let before = std::panic::catch_unwind(|| {
            let ((), _snap) = capture(|| {
                counter!("a", 1);
                panic!("boom");
            });
        });
        assert!(before.is_err());
        // The ambient recorder is current again: this must not record into
        // the panicked capture's recorder.
        let ((), snap) = capture(|| counter!("b", 7));
        assert_eq!(snap.counter("b"), 7);
        assert_eq!(snap.counter("a"), 0);
    }

    #[cfg(feature = "enabled")]
    #[test]
    fn timers_nest_and_record() {
        let ((), snap) = capture(|| {
            let _outer = timer!("outer");
            for _ in 0..3 {
                let _inner = timer!("inner");
                std::hint::black_box(());
            }
        });
        assert_eq!(snap.timer("inner").map(|t| t.count), Some(3));
        assert_eq!(snap.timer("outer").map(|t| t.count), Some(1));
    }

    #[cfg(feature = "enabled")]
    #[test]
    fn ambient_recorder_accumulates_and_resets() {
        reset();
        counter!("ambient.events", 4);
        assert_eq!(snapshot().counter("ambient.events"), 4);
        reset();
        assert_eq!(snapshot().counter("ambient.events"), 0);
    }

    #[cfg(feature = "enabled")]
    #[test]
    fn time_macro_returns_value() {
        let ((), snap) = capture(|| {
            let v = time!("span", 21 * 2);
            assert_eq!(v, 42);
        });
        assert_eq!(snap.timer("span").map(|t| t.count), Some(1));
    }
}
