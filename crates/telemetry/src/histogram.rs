//! Log₂-bucketed histogram.
//!
//! Values are `u64`s (cycles, nanoseconds, queue depths, …) binned by the
//! position of their highest set bit, so 64 fixed buckets cover the full
//! `u64` range with ≤2× relative bucket width — the usual trade for O(1)
//! recording with no preconfigured bounds.

/// Number of buckets: one for zero plus one per possible highest-bit
/// position of a non-zero `u64`.
pub const N_BUCKETS: usize = 65;

/// Returns the bucket index for `value`.
///
/// Bucket 0 holds exactly `0`; bucket `b >= 1` holds
/// `[2^(b-1), 2^b - 1]` — i.e. `1` → 1, `2..=3` → 2, `4..=7` → 3, …
#[inline]
pub fn bucket_index(value: u64) -> usize {
    (64 - value.leading_zeros()) as usize
}

/// Inclusive upper bound of bucket `index` (saturating for the top bucket).
#[inline]
pub fn bucket_upper_bound(index: usize) -> u64 {
    if index == 0 {
        0
    } else if index >= 64 {
        u64::MAX
    } else {
        (1u64 << index) - 1
    }
}

/// A log₂-bucketed distribution of `u64` samples.
#[derive(Debug, Clone)]
pub struct Histogram {
    buckets: [u64; N_BUCKETS],
    count: u64,
    sum: u64,
    min: u64,
    max: u64,
}

impl Default for Histogram {
    fn default() -> Self {
        Histogram {
            buckets: [0; N_BUCKETS],
            count: 0,
            sum: 0,
            min: u64::MAX,
            max: 0,
        }
    }
}

impl Histogram {
    /// Creates an empty histogram.
    pub fn new() -> Self {
        Self::default()
    }

    /// Records one sample.
    #[inline]
    pub fn record(&mut self, value: u64) {
        self.buckets[bucket_index(value)] += 1;
        self.count += 1;
        self.sum = self.sum.saturating_add(value);
        self.min = self.min.min(value);
        self.max = self.max.max(value);
    }

    /// Records `n` identical samples of `value` in one update — exactly
    /// equivalent to calling [`Histogram::record`] `n` times (a no-op when
    /// `n` is zero, leaving min/max untouched). Lets replay-style hot loops
    /// tally bounded-domain values locally and fold them in once.
    #[inline]
    pub fn record_n(&mut self, value: u64, n: u64) {
        if n == 0 {
            return;
        }
        self.buckets[bucket_index(value)] += n;
        self.count += n;
        self.sum = self.sum.saturating_add(value.saturating_mul(n));
        self.min = self.min.min(value);
        self.max = self.max.max(value);
    }

    /// Number of recorded samples.
    pub fn count(&self) -> u64 {
        self.count
    }

    /// Sum of recorded samples (saturating).
    pub fn sum(&self) -> u64 {
        self.sum
    }

    /// Smallest recorded sample, or `None` if empty.
    pub fn min(&self) -> Option<u64> {
        (self.count > 0).then_some(self.min)
    }

    /// Largest recorded sample, or `None` if empty.
    pub fn max(&self) -> Option<u64> {
        (self.count > 0).then_some(self.max)
    }

    /// Mean of recorded samples, or `None` if empty.
    pub fn mean(&self) -> Option<f64> {
        (self.count > 0).then(|| self.sum as f64 / self.count as f64)
    }

    /// Raw bucket counts (index via [`bucket_index`]).
    pub fn buckets(&self) -> &[u64; N_BUCKETS] {
        &self.buckets
    }

    /// Approximate `q`-quantile (`0.0..=1.0`): the upper bound of the first
    /// bucket at which the cumulative count reaches `q * count`, clamped to
    /// the observed max. `None` if empty.
    pub fn quantile(&self, q: f64) -> Option<u64> {
        if self.count == 0 {
            return None;
        }
        let q = q.clamp(0.0, 1.0);
        let target = (q * self.count as f64).ceil().max(1.0) as u64;
        let mut cumulative = 0u64;
        for (i, &n) in self.buckets.iter().enumerate() {
            cumulative += n;
            if cumulative >= target {
                return Some(bucket_upper_bound(i).min(self.max));
            }
        }
        Some(self.max)
    }

    /// Folds another histogram into this one.
    pub fn merge(&mut self, other: &Histogram) {
        if other.count == 0 {
            return;
        }
        for (dst, src) in self.buckets.iter_mut().zip(other.buckets.iter()) {
            *dst += src;
        }
        self.count += other.count;
        self.sum = self.sum.saturating_add(other.sum);
        self.min = self.min.min(other.min);
        self.max = self.max.max(other.max);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bucket_boundaries() {
        assert_eq!(bucket_index(0), 0);
        assert_eq!(bucket_index(1), 1);
        assert_eq!(bucket_index(2), 2);
        assert_eq!(bucket_index(3), 2);
        assert_eq!(bucket_index(4), 3);
        assert_eq!(bucket_index(7), 3);
        assert_eq!(bucket_index(8), 4);
        assert_eq!(bucket_index(u64::MAX), 64);
        // Every bucket's upper bound maps back into that bucket.
        for b in 0..N_BUCKETS {
            assert_eq!(bucket_index(bucket_upper_bound(b)), b, "bucket {b}");
        }
    }

    #[test]
    fn stats_track_samples() {
        let mut h = Histogram::new();
        assert_eq!(h.min(), None);
        assert_eq!(h.mean(), None);
        for v in [3u64, 9, 0, 100] {
            h.record(v);
        }
        assert_eq!(h.count(), 4);
        assert_eq!(h.sum(), 112);
        assert_eq!(h.min(), Some(0));
        assert_eq!(h.max(), Some(100));
        assert_eq!(h.mean(), Some(28.0));
        assert_eq!(h.buckets()[bucket_index(0)], 1);
        assert_eq!(h.buckets()[bucket_index(3)], 1);
    }

    #[test]
    fn quantiles_are_bucket_bounded() {
        let mut h = Histogram::new();
        for v in 1..=1000u64 {
            h.record(v);
        }
        // The true median is 500; bucket resolution gives the upper bound of
        // its bucket [512, 1023] clamped to max — within 2x.
        let p50 = h.quantile(0.5).unwrap();
        assert!((500..=1000).contains(&p50), "p50 = {p50}");
        assert_eq!(h.quantile(1.0), Some(1000));
        assert!(h.quantile(0.0).unwrap() <= 1);
    }

    #[test]
    fn merge_combines() {
        let mut a = Histogram::new();
        let mut b = Histogram::new();
        a.record(5);
        b.record(50);
        b.record(2);
        a.merge(&b);
        assert_eq!(a.count(), 3);
        assert_eq!(a.sum(), 57);
        assert_eq!(a.min(), Some(2));
        assert_eq!(a.max(), Some(50));
        let empty = Histogram::new();
        a.merge(&empty);
        assert_eq!(a.count(), 3);
    }

    #[test]
    fn saturating_sum() {
        let mut h = Histogram::new();
        h.record(u64::MAX);
        h.record(u64::MAX);
        assert_eq!(h.sum(), u64::MAX);
        assert_eq!(h.count(), 2);
    }
}
