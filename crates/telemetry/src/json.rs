//! Minimal JSON helpers: writers for the hand-rolled snapshot/report
//! emitters, and a small reader for consumers of those documents.
//!
//! No JSON library is vendored in this workspace, so snapshot and report
//! emitters hand-roll their documents; these helpers keep the escaping
//! rules in one place. The [`parse`] reader exists for the few places that
//! consume our own output back (e.g. the `repro bench --baseline` perf
//! gate, and round-trip tests) — it is not a general-purpose, spec-complete
//! parser.

use std::collections::BTreeMap;
use std::fmt::Write as _;

/// Appends `s` to `out` as a quoted, escaped JSON string.
pub fn write_string(out: &mut String, s: &str) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                let _ = write!(out, "\\u{:04x}", c as u32);
            }
            c => out.push(c),
        }
    }
    out.push('"');
}

/// Appends `v` to `out` as a JSON number, or `null` for NaN/infinity (which
/// JSON cannot represent).
pub fn write_f64(out: &mut String, v: f64) {
    if v.is_finite() {
        let _ = write!(out, "{v}");
    } else {
        out.push_str("null");
    }
}

/// A parsed JSON value (all numbers are `f64`, as in JavaScript).
#[derive(Debug, Clone, PartialEq)]
pub enum Value {
    /// `null` (also what [`write_f64`] emits for non-finite numbers).
    Null,
    /// `true` / `false`.
    Bool(bool),
    /// Any JSON number.
    Number(f64),
    /// A string.
    String(String),
    /// An array.
    Array(Vec<Value>),
    /// An object, with keys in sorted order.
    Object(BTreeMap<String, Value>),
}

impl Value {
    /// Member `key` of an object, if this is an object that has it.
    pub fn get(&self, key: &str) -> Option<&Value> {
        match self {
            Value::Object(map) => map.get(key),
            _ => None,
        }
    }

    /// The numeric value, if this is a number.
    pub fn as_f64(&self) -> Option<f64> {
        match self {
            Value::Number(n) => Some(*n),
            _ => None,
        }
    }

    /// The string value, if this is a string.
    pub fn as_str(&self) -> Option<&str> {
        match self {
            Value::String(s) => Some(s),
            _ => None,
        }
    }

    /// The object map, if this is an object.
    pub fn as_object(&self) -> Option<&BTreeMap<String, Value>> {
        match self {
            Value::Object(map) => Some(map),
            _ => None,
        }
    }
}

/// Parses a complete JSON document.
///
/// # Errors
///
/// Returns a position-annotated message on malformed input or trailing
/// bytes.
pub fn parse(s: &str) -> Result<Value, String> {
    let bytes = s.as_bytes();
    let mut pos = 0;
    let v = value(bytes, &mut pos)?;
    skip_ws(bytes, &mut pos);
    if pos != bytes.len() {
        return Err(format!("trailing input at {pos}"));
    }
    Ok(v)
}

fn skip_ws(b: &[u8], pos: &mut usize) {
    while *pos < b.len() && b[*pos].is_ascii_whitespace() {
        *pos += 1;
    }
}

fn value(b: &[u8], pos: &mut usize) -> Result<Value, String> {
    skip_ws(b, pos);
    match b.get(*pos) {
        Some(b'{') => object(b, pos),
        Some(b'[') => array(b, pos),
        Some(b'"') => Ok(Value::String(string(b, pos)?)),
        Some(b'n') => literal(b, pos, b"null", Value::Null),
        Some(b't') => literal(b, pos, b"true", Value::Bool(true)),
        Some(b'f') => literal(b, pos, b"false", Value::Bool(false)),
        Some(_) => number(b, pos),
        None => Err("unexpected end".into()),
    }
}

fn literal(b: &[u8], pos: &mut usize, lit: &[u8], v: Value) -> Result<Value, String> {
    if b[*pos..].starts_with(lit) {
        *pos += lit.len();
        Ok(v)
    } else {
        Err(format!("bad literal at {pos}"))
    }
}

fn object(b: &[u8], pos: &mut usize) -> Result<Value, String> {
    *pos += 1; // '{'
    let mut map = BTreeMap::new();
    skip_ws(b, pos);
    if b.get(*pos) == Some(&b'}') {
        *pos += 1;
        return Ok(Value::Object(map));
    }
    loop {
        skip_ws(b, pos);
        let key = string(b, pos)?;
        skip_ws(b, pos);
        if b.get(*pos) != Some(&b':') {
            return Err(format!("expected ':' at {pos}"));
        }
        *pos += 1;
        map.insert(key, value(b, pos)?);
        skip_ws(b, pos);
        match b.get(*pos) {
            Some(b',') => *pos += 1,
            Some(b'}') => {
                *pos += 1;
                return Ok(Value::Object(map));
            }
            _ => return Err(format!("expected ',' or '}}' at {pos}")),
        }
    }
}

fn array(b: &[u8], pos: &mut usize) -> Result<Value, String> {
    *pos += 1; // '['
    let mut items = Vec::new();
    skip_ws(b, pos);
    if b.get(*pos) == Some(&b']') {
        *pos += 1;
        return Ok(Value::Array(items));
    }
    loop {
        items.push(value(b, pos)?);
        skip_ws(b, pos);
        match b.get(*pos) {
            Some(b',') => *pos += 1,
            Some(b']') => {
                *pos += 1;
                return Ok(Value::Array(items));
            }
            _ => return Err(format!("expected ',' or ']' at {pos}")),
        }
    }
}

fn string(b: &[u8], pos: &mut usize) -> Result<String, String> {
    if b.get(*pos) != Some(&b'"') {
        return Err(format!("expected '\"' at {pos}"));
    }
    *pos += 1;
    // Bytes are collected raw (multi-byte UTF-8 passes through unchanged)
    // and validated once at the closing quote.
    let mut out: Vec<u8> = Vec::new();
    while let Some(&c) = b.get(*pos) {
        *pos += 1;
        match c {
            b'"' => return String::from_utf8(out).map_err(|e| e.to_string()),
            b'\\' => {
                let esc = *b.get(*pos).ok_or("truncated escape")?;
                *pos += 1;
                match esc {
                    b'"' => out.push(b'"'),
                    b'\\' => out.push(b'\\'),
                    b'n' => out.push(b'\n'),
                    b'r' => out.push(b'\r'),
                    b't' => out.push(b'\t'),
                    b'u' => {
                        let hex = b
                            .get(*pos..*pos + 4)
                            .and_then(|h| std::str::from_utf8(h).ok())
                            .ok_or("truncated \\u escape")?;
                        let code = u32::from_str_radix(hex, 16).map_err(|e| e.to_string())?;
                        let ch = char::from_u32(code).ok_or("bad codepoint")?;
                        let mut buf = [0u8; 4];
                        out.extend_from_slice(ch.encode_utf8(&mut buf).as_bytes());
                        *pos += 4;
                    }
                    other => return Err(format!("bad escape {other}")),
                }
            }
            c => out.push(c),
        }
    }
    Err("unterminated string".into())
}

fn number(b: &[u8], pos: &mut usize) -> Result<Value, String> {
    let start = *pos;
    while *pos < b.len()
        && (b[*pos].is_ascii_digit() || matches!(b[*pos], b'-' | b'+' | b'.' | b'e' | b'E'))
    {
        *pos += 1;
    }
    std::str::from_utf8(&b[start..*pos])
        .ok()
        .and_then(|s| s.parse::<f64>().ok())
        .map(Value::Number)
        .ok_or_else(|| format!("bad number at {start}"))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parses_nested_documents() {
        let v = parse(r#"{"a": [1, 2.5, -3e2], "b": {"c": "x\ny"}, "d": null, "e": true}"#)
            .expect("valid");
        assert_eq!(
            v.get("a"),
            Some(&Value::Array(vec![
                Value::Number(1.0),
                Value::Number(2.5),
                Value::Number(-300.0),
            ]))
        );
        assert_eq!(
            v.get("b").and_then(|b| b.get("c")).and_then(Value::as_str),
            Some("x\ny")
        );
        assert_eq!(v.get("d"), Some(&Value::Null));
        assert_eq!(v.get("e"), Some(&Value::Bool(true)));
        assert_eq!(v.get("missing"), None);
        assert_eq!(v.get("a").and_then(Value::as_f64), None);
    }

    #[test]
    fn write_then_parse_round_trips() {
        let mut doc = String::from("{");
        write_string(&mut doc, "name\"with\\escapes");
        doc.push(':');
        write_f64(&mut doc, 1.25);
        doc.push(',');
        write_string(&mut doc, "nan");
        doc.push(':');
        write_f64(&mut doc, f64::NAN);
        doc.push('}');
        let v = parse(&doc).expect("own output parses");
        assert_eq!(
            v.get("name\"with\\escapes").and_then(Value::as_f64),
            Some(1.25)
        );
        assert_eq!(v.get("nan"), Some(&Value::Null));
    }

    #[test]
    fn rejects_malformed_input() {
        assert!(parse("{").is_err());
        assert!(parse("[1, 2,]").is_err());
        assert!(parse("{}extra").is_err());
        assert!(parse("nope").is_err());
    }
}
