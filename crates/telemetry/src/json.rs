//! Minimal JSON-writing helpers.
//!
//! No JSON library is vendored in this workspace, so snapshot and report
//! emitters hand-roll their documents; these helpers keep the escaping rules
//! in one place.

use std::fmt::Write as _;

/// Appends `s` to `out` as a quoted, escaped JSON string.
pub fn write_string(out: &mut String, s: &str) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                let _ = write!(out, "\\u{:04x}", c as u32);
            }
            c => out.push(c),
        }
    }
    out.push('"');
}

/// Appends `v` to `out` as a JSON number, or `null` for NaN/infinity (which
/// JSON cannot represent).
pub fn write_f64(out: &mut String, v: f64) {
    if v.is_finite() {
        let _ = write!(out, "{v}");
    } else {
        out.push_str("null");
    }
}
