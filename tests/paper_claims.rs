//! Shape checks against the paper's qualitative claims, at reduced scale.
//! (EXPERIMENTS.md records the quantitative full-scale comparison.)

use pathfinder_suite::core::{PathfinderConfig, PathfinderPrefetcher, Readout};
use pathfinder_suite::harness::experiments::snn_analysis;
use pathfinder_suite::harness::runner::{PrefetcherKind, Scenario};
use pathfinder_suite::hw::{CamHardware, PathfinderHardware, SnnHardware};
use pathfinder_suite::prefetch::generate_prefetches;
use pathfinder_suite::traces::Workload;

const SEED: u64 = 42;

/// §5: "SPP is selective in the high-confidence prefetches that it issues,
/// giving it the highest accuracy, but also lower coverage".
#[test]
fn spp_is_most_accurate_but_low_coverage() {
    let sc = Scenario::with_loads(20_000);
    let kinds = [
        PrefetcherKind::BestOffset,
        PrefetcherKind::Spp,
        PrefetcherKind::Pythia,
    ];
    let evals = sc.evaluate_all(&kinds, Workload::Soplex);
    let acc: Vec<f64> = evals.iter().map(|e| e.accuracy()).collect();
    assert!(
        acc[1] > acc[0] && acc[1] > acc[2],
        "SPP should lead accuracy: BO {:.2} SPP {:.2} Pythia {:.2}",
        acc[0],
        acc[1],
        acc[2]
    );
    let issued: Vec<u64> = evals.iter().map(|e| e.requested()).collect();
    assert!(
        issued[1] < issued[2],
        "SPP should issue fewer than Pythia (Table 6): {} vs {}",
        issued[1],
        issued[2]
    );
}

/// Table 6's shape: Pythia is the most aggressive issuer; PATHFINDER is
/// selective on irregular workloads (mcf) but aggressive on patterned ones.
#[test]
fn pathfinder_is_selective_on_mcf() {
    let sc = Scenario::with_loads(20_000);
    let mcf = sc.evaluate_all(
        &[
            PrefetcherKind::Pythia,
            PrefetcherKind::Pathfinder(PathfinderConfig::default()),
        ],
        Workload::Mcf,
    );
    let sphinx = sc.evaluate_all(
        &[PrefetcherKind::Pathfinder(PathfinderConfig::default())],
        Workload::Sphinx,
    );
    // PATHFINDER is choosier than Pythia on the irregular mcf: what it does
    // issue is markedly more accurate (the paper reports PF's selectivity
    // as near-zero issue counts on mcf; our synthetic mcf carries a larger
    // learnable minority, so selectivity shows up as accuracy instead).
    assert!(
        mcf[1].accuracy() > mcf[0].accuracy(),
        "PF accuracy {:.3} vs Pythia {:.3} on mcf",
        mcf[1].accuracy(),
        mcf[0].accuracy()
    );
    // ...and its mcf prefetches cover far less than on a patterned workload
    // (selectivity shows up as usefulness: the mcf pointer chase offers few
    // learnable patterns).
    assert!(
        mcf[1].coverage() < sphinx[0].coverage() / 2.0,
        "PF mcf coverage {:.3} vs sphinx {:.3}",
        mcf[1].coverage(),
        sphinx[0].coverage()
    );
}

/// §5: the ensemble bridges PATHFINDER's coverage gap.
#[test]
fn ensemble_extends_pathfinder_coverage() {
    let sc = Scenario::with_loads(20_000);
    let evals = sc.evaluate_all(
        &[
            PrefetcherKind::Pathfinder(PathfinderConfig::default()),
            PrefetcherKind::PathfinderNlSisb(PathfinderConfig::default()),
        ],
        Workload::Mcf,
    );
    assert!(
        evals[1].coverage() >= evals[0].coverage(),
        "ensemble coverage {:.3} vs pathfinder {:.3}",
        evals[1].coverage(),
        evals[0].coverage()
    );
}

/// Table 1: the first-tick argmax matches the 32-tick winner in the large
/// majority of queries (the paper reports 82-94%).
#[test]
fn one_tick_approximation_matches_winner_mostly() {
    let sc = Scenario::with_loads(12_000);
    let (rows, _) = snn_analysis::tab1(&sc, &[Workload::Soplex, Workload::Sphinx]);
    for r in &rows {
        assert!(r.comparisons > 100, "{}: too few comparisons", r.workload);
        // The paper reports 82-94%; our noisier rate coding and tick-
        // granularity ties land lower (~50-80% — see EXPERIMENTS.md), but
        // the approximation must still beat chance (1/50 neurons) by a
        // wide margin.
        assert!(
            r.match_rate > 0.4,
            "{}: match rate {:.2} too low for the §3.4 approximation",
            r.workload,
            r.match_rate
        );
    }
}

/// Table 2 / §3.6: a repeated pattern recruits a stable winner neuron.
#[test]
fn snn_demo_recruits_stable_winner() {
    let (rows, _, _) = snn_analysis::tab2(SEED);
    let repeated: Vec<_> = rows.iter().filter(|r| r.pattern == [1, 2, 4]).collect();
    let winners: Vec<usize> = repeated.iter().filter_map(|r| r.firing_neuron).collect();
    assert!(winners.len() >= 4, "pattern should fire most repetitions");
    // §3.6 claims stability for the *trained* network: early presentations
    // may hand off between competing neurons while STDP is still separating
    // them, so judge only the trailing half of the winner sequence.
    let trained = &winners[winners.len() / 2..];
    let anchor = trained[0];
    let stable = trained.iter().filter(|&&w| w == anchor).count();
    assert!(
        stable as f64 / trained.len() as f64 > 0.7,
        "trained winner should be stable: {winners:?}"
    );
}

/// Abstract: PATHFINDER fits in 0.23 mm² and 0.5 W at 12 nm — under 1% of a
/// Ryzen 2700X.
#[test]
fn hardware_totals_match_abstract() {
    let e = PathfinderHardware::paper_default().estimate();
    assert!((e.area_mm2 - 0.23).abs() < 0.01, "area {}", e.area_mm2);
    assert!(e.power_w < 0.5, "power {}", e.power_w);
    assert!(e.die_fraction() < 0.01);
}

/// Table 9's monotone structure: cost strictly shrinks with both PE count
/// and delta range.
#[test]
fn table9_is_monotone() {
    let mut prev_area = f64::INFINITY;
    for width in [127usize, 63, 31] {
        let e = SnnHardware {
            n_pe: 50,
            delta_width: width,
            history: 3,
        }
        .estimate();
        assert!(e.area_mm2 < prev_area);
        prev_area = e.area_mm2;
    }
    let one_pe = SnnHardware {
        n_pe: 1,
        delta_width: 127,
        history: 3,
    }
    .estimate();
    assert!(one_pe.area_mm2 < 0.01);
    // §3.5: the supporting CAMs are small next to the SNN.
    let snn = SnnHardware::paper_default().estimate();
    let tt = CamHardware::training_table().estimate();
    assert!(tt.area_mm2 < snn.area_mm2 / 5.0);
}

/// §3.4 "Initial Accesses to a Page": enabling the initial-access encoding
/// must let PATHFINDER query the SNN from the very first touch.
#[test]
fn initial_access_extension_increases_queries() {
    let trace = Workload::Soplex.generate(10_000, SEED);
    let run = |enabled: bool| {
        let mut pf = PathfinderPrefetcher::new(PathfinderConfig {
            initial_access_encoding: enabled,
            readout: Readout::OneTick,
            ..PathfinderConfig::default()
        })
        .unwrap();
        let _ = generate_prefetches(&mut pf, &trace, 2);
        pf.stats().snn_queries
    };
    assert!(
        run(true) > run(false),
        "initial-access encoding should add queries"
    );
}

/// §5 / Figure 8: a 1%-duty-cycled STDP (first 50 of every 5000 accesses)
/// should stay within a modest margin of always-on learning.
#[test]
fn duty_cycled_stdp_remains_competitive() {
    use pathfinder_suite::core::StdpDutyCycle;
    let sc = Scenario::with_loads(20_000);
    let always = sc.evaluate_all(
        &[PrefetcherKind::Pathfinder(PathfinderConfig::default())],
        Workload::Sphinx,
    );
    let duty = sc.evaluate_all(
        &[PrefetcherKind::Pathfinder(PathfinderConfig {
            stdp_duty: StdpDutyCycle::first_n_of_5000(50),
            ..PathfinderConfig::default()
        })],
        Workload::Sphinx,
    );
    assert!(
        duty[0].ipc() > always[0].ipc() * 0.9,
        "duty-cycled {:.3} vs always-on {:.3}",
        duty[0].ipc(),
        always[0].ipc()
    );
}
