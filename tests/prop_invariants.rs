//! Property-based tests (proptest) on the core data structures' invariants.

use proptest::prelude::*;

use pathfinder_suite::core::{InferenceTable, PathfinderConfig, PixelMatrixEncoder, TrainingTable};
use pathfinder_suite::prefetch::{generate_prefetches, SppPrefetcher};
use pathfinder_suite::sim::{
    Block, Cache, CacheConfig, CoreConfig, DramConfig, DramModel, MemoryAccess, RobModel, Trace,
};
use pathfinder_suite::snn::{DiehlCookNetwork, SnnConfig};

proptest! {
    /// Address decomposition round-trips for arbitrary raw addresses.
    #[test]
    fn addr_decomposition_roundtrips(raw in 0u64..(1 << 48)) {
        let a = pathfinder_suite::sim::Addr::new(raw);
        let block = a.block();
        prop_assert_eq!(block.page(), a.page());
        prop_assert_eq!(block.page_offset(), a.page_offset_blocks());
        prop_assert!(block.base_addr().raw() <= raw);
        prop_assert!(raw - block.base_addr().raw() < 64);
    }

    /// Same-page deltas always fit in the paper's delta range.
    #[test]
    fn same_page_deltas_bounded(page in 0u64..1_000_000, a in 0u8..64, b in 0u8..64) {
        let p = pathfinder_suite::sim::Page(page);
        let d = p.block_at(a).page_delta(p.block_at(b)).expect("same page");
        prop_assert!((-63..=63).contains(&d));
        prop_assert_eq!(d, b as i8 - a as i8);
    }

    /// Cache occupancy never exceeds capacity, and a filled block probes
    /// true until evicted by construction.
    #[test]
    fn cache_occupancy_bounded(blocks in prop::collection::vec(0u64..4096, 1..300)) {
        let mut cache = Cache::new(CacheConfig::new(16, 4, 1));
        for &b in &blocks {
            cache.demand_access(Block(b));
            cache.fill(Block(b), false, 0);
            prop_assert!(cache.probe(Block(b)), "freshly filled block present");
            prop_assert!(cache.occupancy() <= 16 * 4);
        }
        let stats = cache.stats();
        prop_assert_eq!(stats.hits + stats.misses, blocks.len() as u64);
    }

    /// DRAM completion times are causal: data never returns before the
    /// request plus the minimum access latency.
    #[test]
    fn dram_completions_causal(reqs in prop::collection::vec((0u64..1_000_000, 0u64..500), 1..100)) {
        let cfg = DramConfig::default();
        let mut dram = DramModel::new(cfg);
        let mut now = 0u64;
        for (blk, gap) in reqs {
            now += gap;
            let done = dram.service(Block(blk), now);
            prop_assert!(done >= now + cfg.t_cas + cfg.burst_cycles);
        }
    }

    /// ROB retirement is monotone in program order regardless of latencies.
    #[test]
    fn rob_retirement_monotone(lat in prop::collection::vec(1u64..500, 1..200)) {
        let mut rob = RobModel::new(CoreConfig::default());
        let mut prev_retire = 0u64;
        for (i, l) in lat.iter().enumerate() {
            let id = i as u64 * 3;
            let issue = rob.issue_cycle(id);
            let retire = rob.complete_load(id, issue, *l);
            prop_assert!(retire >= prev_retire, "in-order retirement");
            prop_assert!(retire >= issue + l);
            prev_retire = retire;
        }
    }

    /// The pixel encoder emits intensities in [0, 1], with exactly one
    /// full-intensity pixel per encoded delta row, wherever the deltas lie.
    #[test]
    fn pixel_encoder_well_formed(
        d1 in -200i16..200,
        d2 in -200i16..200,
        d3 in -200i16..200,
        enlarged in any::<bool>(),
        reorder in any::<bool>(),
    ) {
        let cfg = PathfinderConfig {
            enlarged_pixels: enlarged,
            reorder_pixels: reorder,
            ..PathfinderConfig::default()
        };
        let enc = PixelMatrixEncoder::new(&cfg);
        let rates = enc.encode(&[d1, d2, d3]);
        prop_assert_eq!(rates.len(), cfg.n_input());
        prop_assert!(rates.iter().all(|&r| (0.0..=1.0).contains(&r)));
        let full: usize = rates.iter().filter(|&&r| r == 1.0).count();
        prop_assert_eq!(full, 3, "one center pixel per row");
    }

    /// Inference-table confidences stay in the 3-bit range under arbitrary
    /// reward/penalize sequences, and dead labels disappear.
    #[test]
    fn inference_confidence_is_3bit(ops in prop::collection::vec(any::<bool>(), 0..200)) {
        let mut it = InferenceTable::new(4, 2);
        it.assign(0, 5);
        for up in ops {
            if up {
                it.reward(0, 0);
            } else {
                it.penalize(0, 0);
            }
            for (_, label) in it.labels(0) {
                prop_assert!(label.confidence >= 1 && label.confidence <= 7);
            }
        }
    }

    /// Training-table deltas always equal the offset differences fed in;
    /// same-block repeats are invisible (delta-0 filtering, as at the LLC).
    #[test]
    fn training_table_delta_correct(offsets in prop::collection::vec(0u8..64, 2..40)) {
        let mut tt = TrainingTable::new(64, 3);
        let mut prev: Option<u8> = None;
        for &off in &offsets {
            let d = tt.record_offset(1, 9, off);
            match prev {
                None => {
                    prop_assert!(d.is_none());
                    prev = Some(off);
                }
                Some(p) if p == off => prop_assert!(d.is_none(), "repeat is filtered"),
                Some(p) => {
                    prop_assert_eq!(d, Some(off as i16 - p as i16));
                    prev = Some(off);
                }
            }
        }
    }

    /// SNN weights stay finite, non-negative, and (post-learning) each
    /// neuron's incoming sum stays at the configured norm.
    #[test]
    fn snn_weights_stay_normalized(pattern in prop::collection::vec(0usize..24, 1..5)) {
        let mut cfg = SnnConfig {
            n_input: 24,
            n_exc: 6,
            ..SnnConfig::default()
        };
        cfg.stdp.norm = 4.8;
        let mut net = DiehlCookNetwork::new(cfg, 3).unwrap();
        let mut rates = vec![0.0f32; 24];
        for &i in &pattern {
            rates[i] = 1.0;
        }
        for _ in 0..3 {
            net.present(&rates, true);
        }
        for j in 0..6 {
            let w = net.neuron_weights(j);
            prop_assert!(w.iter().all(|x| x.is_finite() && *x >= 0.0));
            let sum: f32 = w.iter().sum();
            prop_assert!((sum - 4.8).abs() < 0.05, "neuron {} sum {}", j, sum);
        }
    }

    /// SPP never prefetches outside the trigger's page.
    #[test]
    fn spp_stays_in_page(offsets in prop::collection::vec(0u8..64, 10..80)) {
        let mut spp = SppPrefetcher::new();
        let trace: Trace = offsets
            .iter()
            .enumerate()
            .map(|(i, &o)| MemoryAccess::new(i as u64, 0x400, ((i as u64 / 10) % 4) * 4096 + o as u64 * 64))
            .collect();
        let schedule = generate_prefetches(&mut spp, &trace, 2);
        for r in &schedule {
            let trig = trace.accesses()[r.trigger_instr_id as usize];
            prop_assert_eq!(r.block.page(), trig.vaddr.page());
        }
    }

    /// Trace generators keep instruction ids strictly increasing for any
    /// seed and length.
    #[test]
    fn generator_ids_strictly_increase(seed in 0u64..1000, loads in 100usize..800) {
        let t = pathfinder_suite::traces::Workload::Omnetpp.generate(loads, seed);
        prop_assert_eq!(t.len(), loads);
        prop_assert!(t.accesses().windows(2).all(|w| w[1].instr_id > w[0].instr_id));
    }
}
