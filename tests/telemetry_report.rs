//! Integration tests for the telemetry pipeline end to end: instrumented
//! crates → per-evaluation capture → RunReport emission.
//!
//! The harness is built with its default features here, which turn on
//! `pathfinder-telemetry/enabled` across the whole dependency graph, so
//! these tests exercise the *recording* path (the zero-cost disabled path is
//! covered by the telemetry crate's own `--no-default-features` tests).

use pathfinder_suite::harness::experiments::report;
use pathfinder_suite::harness::runner::{PrefetcherKind, Scenario};
use pathfinder_suite::telemetry;
use pathfinder_suite::traces::Workload;

#[test]
fn telemetry_is_compiled_in_for_the_suite() {
    assert!(
        telemetry::enabled(),
        "the facade must pull in the harness's default `telemetry` feature"
    );
}

/// The contract stated in `sim::engine::issue_prefetch`: the
/// `sim.prefetch.issued` counter is incremented in lockstep with
/// `SimReport::prefetches_issued`, so a run report's telemetry column always
/// agrees with the simulator's own statistics.
#[test]
fn run_report_issue_counter_matches_sim_report() {
    let scenario = Scenario::with_loads(8000);
    let trace = scenario.trace(Workload::Sphinx);
    let baseline = scenario.baseline_misses(&trace);

    for kind in [
        PrefetcherKind::NoPrefetch,
        PrefetcherKind::NextLine,
        PrefetcherKind::BestOffset,
    ] {
        let (eval, snap) =
            scenario.evaluate_with_telemetry(&kind, Workload::Sphinx, &trace, baseline);
        assert_eq!(
            snap.counter("sim.prefetch.issued"),
            eval.report.prefetches_issued,
            "telemetry vs SimReport disagree for {}",
            kind.label()
        );
    }
}

#[test]
fn capture_scopes_each_prefetcher_separately() {
    let scenario = Scenario::with_loads(6000);
    let trace = scenario.trace(Workload::Cc5);
    let baseline = scenario.baseline_misses(&trace);

    let (none_eval, none_snap) = scenario.evaluate_with_telemetry(
        &PrefetcherKind::NoPrefetch,
        Workload::Cc5,
        &trace,
        baseline,
    );
    let (nl_eval, nl_snap) = scenario.evaluate_with_telemetry(
        &PrefetcherKind::NextLine,
        Workload::Cc5,
        &trace,
        baseline,
    );

    // NoPrefetch issues nothing; its snapshot must not have absorbed the
    // next-line run's traffic (and vice versa).
    assert_eq!(none_eval.report.prefetches_issued, 0);
    assert_eq!(none_snap.counter("sim.prefetch.issued"), 0);
    assert!(nl_eval.report.prefetches_issued > 0);
    assert_eq!(
        nl_snap.counter("sim.prefetch.issued"),
        nl_eval.report.prefetches_issued
    );

    // Every evaluation replays through the simulator, so demand-side metrics
    // and phase timers must be present in both snapshots.
    for snap in [&none_snap, &nl_snap] {
        assert!(snap.counter("sim.l1d.hits") + snap.counter("sim.l1d.misses") > 0);
        assert!(snap.timer("harness.replay").is_some());
        assert!(snap.timer("harness.generate").is_some());
    }
}

#[test]
fn run_report_json_and_markdown_cover_all_rows() {
    let scenario = Scenario::with_loads(5000);
    let kinds = [PrefetcherKind::NoPrefetch, PrefetcherKind::NextLine];
    let rep = report::run(&scenario, &kinds, &[Workload::Sphinx, Workload::Mcf]);

    assert_eq!(rep.rows.len(), 4, "2 workloads x 2 prefetchers");
    assert!(rep.telemetry_enabled);

    let json = rep.to_json();
    for key in [
        "\"loads\":5000",
        "\"telemetry_enabled\":true",
        "\"prefetches_issued\"",
        "\"sim.prefetch.issued\"",
        "\"harness.replay\"",
    ] {
        assert!(json.contains(key), "JSON missing {key}: {json}");
    }

    let md = rep.to_markdown();
    assert!(md.contains("## Telemetry: NextLine"));
    assert!(md.contains("| workload | prefetcher |"));
}

/// `sim.prefetch.filtered` is gated on the measuring window exactly like
/// `sim.prefetch.issued`: residency-filtered prefetches inside the warmup
/// window leave no trace in telemetry, and the resulting snapshot is stable
/// enough to pin byte-for-byte through [`RunReport::canonical`].
#[test]
fn filtered_counter_is_warmup_gated_and_canonical_pinned() {
    use pathfinder_suite::sim::{
        MemoryAccess, PrefetchRequest, ReferenceSimulator, SimConfig, Simulator, Trace,
    };

    // Every access touches a fresh block; every prefetch re-requests the
    // block its own trigger access just demand-filled, so the residency
    // probe filters all of them: requested == filtered, issued == 0.
    let trace: Trace = (0..100u64)
        .map(|i| MemoryAccess::new(i * 4, 0x400, 0x40_0000 + i * 64))
        .collect();
    let schedule: Vec<PrefetchRequest> = trace
        .iter()
        .map(|a| PrefetchRequest::new(a.instr_id, a.block()))
        .collect();

    let capture_run = |warmup: usize| {
        telemetry::capture(|| {
            Simulator::new(SimConfig::default()).run_with_warmup(&trace, &schedule, warmup)
        })
    };

    // Warmup 0: all 100 filtered prefetches are measured.
    let (rep_full, snap_full) = capture_run(0);
    assert_eq!(rep_full.prefetches_requested, 100);
    assert_eq!(rep_full.prefetches_issued, 0);
    assert_eq!(snap_full.counter("sim.prefetch.filtered"), 100);

    // Warmup 50: the first 50 filtered prefetches vanish from both the
    // report and the telemetry column — the gate matches `issued`'s.
    let (rep_half, snap_half) = capture_run(50);
    assert_eq!(rep_half.prefetches_requested, 50);
    assert_eq!(snap_half.counter("sim.prefetch.filtered"), 50);
    assert_eq!(snap_half.counter("sim.prefetch.issued"), 0);

    // Whole-trace warmup: the counter must be entirely absent, not zero.
    let (rep_none, snap_none) = capture_run(trace.len());
    assert_eq!(rep_none.prefetches_requested, 0);
    assert!(
        !snap_none.counters.contains_key("sim.prefetch.filtered"),
        "warmup-window filtering must not record telemetry"
    );

    // Pin the gated counter through RunReport::canonical(): a hand-rolled
    // report around the snapshot serializes byte-identically across repeat
    // runs (and across the flat and reference engines, which must agree on
    // every counter and histogram, timers excepted — canonical zeroes those).
    let build_report = |snap: telemetry::Snapshot| report::RunReport {
        loads: trace.len(),
        seed: 0,
        telemetry_enabled: telemetry::enabled(),
        rows: Vec::new(),
        per_prefetcher: vec![("FilteredProbe".to_string(), snap)],
    };
    let json_a = build_report(snap_half).canonical().to_json();
    assert!(
        json_a.contains("\"sim.prefetch.filtered\":50"),
        "canonical JSON must pin the measured filter count: {json_a}"
    );
    let (_, snap_again) = capture_run(50);
    assert_eq!(
        json_a,
        build_report(snap_again).canonical().to_json(),
        "canonical reports must be byte-identical across repeat runs"
    );
    let (_, snap_ref) = telemetry::capture(|| {
        ReferenceSimulator::new(SimConfig::default()).run_with_warmup(&trace, &schedule, 50)
    });
    assert_eq!(
        json_a,
        build_report(snap_ref).canonical().to_json(),
        "flat and reference engines must record identical telemetry"
    );
}

/// PATHFINDER itself must light up the SNN- and prefetcher-level metrics the
/// paper's analysis sections rely on (spike counts for §4.7's activity
/// argument, training-table traffic for the Table 4 storage discussion).
#[test]
fn pathfinder_run_records_snn_and_table_metrics() {
    let scenario = Scenario::with_loads(6000);
    let trace = scenario.trace(Workload::Sphinx);
    let baseline = scenario.baseline_misses(&trace);

    let (_eval, snap) = scenario.evaluate_with_telemetry(
        &PrefetcherKind::Pathfinder(Default::default()),
        Workload::Sphinx,
        &trace,
        baseline,
    );

    assert!(snap.counter("pf.accesses") > 0);
    assert!(snap.counter("snn.presentations") > 0);
    assert!(snap.counter("snn.input.spikes") > 0);
    assert!(
        snap.counter("pf.train.hits") + snap.counter("pf.train.misses") > 0,
        "training-table traffic must be recorded"
    );
}
