//! Every stochastic component must be bit-for-bit reproducible for a seed:
//! the experiments in EXPERIMENTS.md are only meaningful if reruns agree.

use pathfinder_suite::core::{PathfinderConfig, PathfinderPrefetcher};
use pathfinder_suite::harness::runner::{PrefetcherKind, Scenario};
use pathfinder_suite::prefetch::{generate_prefetches, PythiaPrefetcher};
use pathfinder_suite::sim::{SimConfig, Simulator};
use pathfinder_suite::snn::{DiehlCookNetwork, SnnConfig};
use pathfinder_suite::traces::Workload;

#[test]
fn traces_are_deterministic_per_seed() {
    for w in Workload::ALL {
        let a = w.generate(3_000, 7);
        let b = w.generate(3_000, 7);
        assert_eq!(a, b, "{w}");
        let c = w.generate(3_000, 8);
        assert_ne!(a, c, "{w}: different seeds should differ");
    }
}

#[test]
fn pathfinder_schedules_are_deterministic() {
    let trace = Workload::Soplex.generate(6_000, 3);
    let run = || {
        let mut pf = PathfinderPrefetcher::new(PathfinderConfig::default()).unwrap();
        generate_prefetches(&mut pf, &trace, 2)
    };
    assert_eq!(run(), run());
}

#[test]
fn pythia_schedules_are_deterministic() {
    let trace = Workload::Cc5.generate(6_000, 3);
    let run = |seed: u64| {
        let mut p = PythiaPrefetcher::new(seed);
        generate_prefetches(&mut p, &trace, 2)
    };
    assert_eq!(run(9), run(9));
    assert_ne!(run(9), run(10), "epsilon-greedy must depend on the seed");
}

#[test]
fn simulator_replay_is_deterministic() {
    let trace = Workload::Xalan.generate(6_000, 3);
    let a = Simulator::new(SimConfig::default()).run(&trace, &[]);
    let b = Simulator::new(SimConfig::default()).run(&trace, &[]);
    assert_eq!(a.cycles, b.cycles);
    assert_eq!(a.llc_misses, b.llc_misses);
}

#[test]
fn snn_runs_are_deterministic() {
    let cfg = SnnConfig {
        n_input: 24,
        n_exc: 8,
        ..SnnConfig::default()
    };
    let mut a = DiehlCookNetwork::new(cfg, 11).unwrap();
    let mut b = DiehlCookNetwork::new(cfg, 11).unwrap();
    let mut rates = vec![0.0f32; 24];
    rates[3] = 1.0;
    rates[17] = 1.0;
    for _ in 0..5 {
        assert_eq!(a.present(&rates, true), b.present(&rates, true));
    }
}

#[test]
fn full_evaluation_is_deterministic() {
    let sc = Scenario::with_loads(5_000);
    let run = || {
        sc.evaluate_all(
            &[PrefetcherKind::Spp, PrefetcherKind::Pythia],
            Workload::Nutch,
        )
        .into_iter()
        .map(|e| (e.report.cycles, e.report.prefetches_useful))
        .collect::<Vec<_>>()
    };
    assert_eq!(run(), run());
}
