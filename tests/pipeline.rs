//! End-to-end integration tests spanning every crate: trace generation →
//! prefetch-schedule generation → timed replay → metrics.

use pathfinder_suite::core::{PathfinderConfig, PathfinderPrefetcher, Readout};
use pathfinder_suite::harness::runner::{PrefetcherKind, Scenario};
use pathfinder_suite::prefetch::{generate_prefetches, NoPrefetcher, OraclePrefetcher};
use pathfinder_suite::sim::{SimConfig, Simulator};
use pathfinder_suite::traces::Workload;

const LOADS: usize = 8_000;
const SEED: u64 = 1234;

#[test]
fn every_workload_flows_through_the_full_pipeline() {
    for w in Workload::ALL {
        let trace = w.generate(LOADS, SEED);
        assert_eq!(trace.len(), LOADS, "{w}");
        let report = Simulator::new(SimConfig::default()).run(&trace, &[]);
        assert!(report.ipc() > 0.0, "{w}: ipc {}", report.ipc());
        assert!(report.ipc() <= 4.0, "{w}: ipc above core width");
        assert_eq!(report.loads, LOADS as u64, "{w}");
        assert!(report.llc_misses > 0, "{w} should produce LLC misses");
    }
}

#[test]
fn oracle_dominates_no_prefetch_everywhere() {
    for w in [Workload::Mcf, Workload::Sphinx, Workload::Xalan] {
        let trace = w.generate(LOADS, SEED);
        let base = Simulator::new(SimConfig::default()).run(&trace, &[]);
        let mut oracle = OraclePrefetcher::new(2);
        let schedule = generate_prefetches(&mut oracle, &trace, 2);
        let best = Simulator::new(SimConfig::default()).run(&trace, &schedule);
        assert!(
            best.ipc() >= base.ipc(),
            "{w}: oracle {} vs base {}",
            best.ipc(),
            base.ipc()
        );
        assert!(
            best.accuracy() > 0.8,
            "{w}: oracle accuracy {}",
            best.accuracy()
        );
    }
}

#[test]
fn competition_degree_limit_is_respected_by_all() {
    let trace = Workload::Soplex.generate(4_000, SEED);
    for kind in PrefetcherKind::figure4_lineup() {
        let mut p = kind.build(SEED);
        let schedule = generate_prefetches(p.as_mut(), &trace, 2);
        let mut per_trigger = std::collections::HashMap::new();
        for r in &schedule {
            *per_trigger.entry(r.trigger_instr_id).or_insert(0usize) += 1;
        }
        let max = per_trigger.values().copied().max().unwrap_or(0);
        assert!(
            max <= 2,
            "{}: issued {max} prefetches on one access",
            p.name()
        );
    }
}

#[test]
fn pathfinder_full_and_one_tick_both_produce_useful_prefetches() {
    let trace = Workload::Soplex.generate(LOADS, SEED);
    let base = Simulator::new(SimConfig::default()).run(&trace, &[]);
    for readout in [Readout::FullInterval, Readout::OneTick] {
        let mut pf = PathfinderPrefetcher::new(PathfinderConfig {
            readout,
            ..PathfinderConfig::default()
        })
        .unwrap();
        let schedule = generate_prefetches(&mut pf, &trace, 2);
        let report = Simulator::new(SimConfig::default()).run(&trace, &schedule);
        assert!(
            report.prefetches_useful > 0,
            "{readout:?} produced no useful prefetches"
        );
        assert!(report.coverage(base.llc_misses) > 0.0);
    }
}

#[test]
fn scenario_metrics_are_internally_consistent() {
    let sc = Scenario::with_loads(LOADS);
    let evals = sc.evaluate_all(
        &[PrefetcherKind::NoPrefetch, PrefetcherKind::Spp],
        Workload::Nutch,
    );
    let (none, spp) = (&evals[0], &evals[1]);
    assert_eq!(none.requested(), 0);
    assert_eq!(none.accuracy(), 0.0);
    assert!(spp.report.prefetches_issued <= spp.report.prefetches_requested);
    assert!(spp.report.prefetches_useful <= spp.report.prefetches_issued);
    assert!(spp.accuracy() <= 1.0);
    // Coverage denominator is the no-prefetch run's misses.
    assert_eq!(none.baseline_misses, none.report.llc_misses);
}

#[test]
fn replay_counters_add_up() {
    let trace = Workload::Cc5.generate(LOADS, SEED);
    let report = Simulator::new(SimConfig::default()).run(&trace, &[]);
    assert_eq!(
        report.l1d_hits + report.l2_hits + report.llc_load_accesses,
        report.loads,
        "hierarchy levels must partition the loads"
    );
    assert_eq!(
        report.llc_hits + report.llc_misses,
        report.llc_load_accesses,
        "LLC hits and misses must partition LLC accesses"
    );
}

#[test]
fn no_prefetcher_is_truly_inert() {
    let trace = Workload::Astar.generate(4_000, SEED);
    let mut none = NoPrefetcher::new();
    let schedule = generate_prefetches(&mut none, &trace, 2);
    assert!(schedule.is_empty());
    let a = Simulator::new(SimConfig::default()).run(&trace, &[]);
    let b = Simulator::new(SimConfig::default()).run(&trace, &schedule);
    assert_eq!(a.cycles, b.cycles);
}

#[test]
fn warmup_mode_reports_fewer_loads_but_same_order() {
    let trace = Workload::Cloud9.generate(6_000, SEED);
    let full = Simulator::new(SimConfig::default()).run(&trace, &[]);
    let warm = Simulator::new(SimConfig::default()).run_with_warmup(&trace, &[], 3_000);
    assert_eq!(warm.loads, 3_000);
    assert!(warm.cycles < full.cycles);
}
