//! The sweep engine must be bit-deterministic: a cell's result depends only
//! on its own `(seed, workload, prefetcher)` derivation, never on which
//! worker ran it or in what order, so `--threads 1` and `--threads 8`
//! produce identical evaluations, merged snapshots, and (canonical) report
//! JSON. See ROADMAP's seed-robustness note: assertions here compare runs
//! against each other, not against hard-coded learned outcomes.

use pathfinder_suite::harness::engine::{self, run_grid_threads};
use pathfinder_suite::harness::experiments::report;
use pathfinder_suite::harness::runner::{PrefetcherKind, Scenario};
use pathfinder_suite::telemetry::Snapshot;
use pathfinder_suite::traces::Workload;

fn small_lineup() -> Vec<PrefetcherKind> {
    vec![
        PrefetcherKind::NoPrefetch,
        PrefetcherKind::NextLine,
        PrefetcherKind::Spp,
        PrefetcherKind::Pathfinder(Default::default()),
    ]
}

/// Zeroes wall-clock timer durations (span counts stay — they are
/// deterministic) so snapshots from different runs can be compared exactly.
fn canonical(snap: &Snapshot) -> Snapshot {
    let mut c = snap.clone();
    for timer in c.timers.values_mut() {
        timer.total_ns = 0;
    }
    c
}

#[test]
fn grid_is_identical_at_threads_1_and_8() {
    let sc = Scenario::with_loads(4_000);
    let kinds = small_lineup();
    let workloads = [Workload::Sphinx, Workload::Cc5, Workload::Mcf];

    let serial = run_grid_threads(1, &sc, &kinds, &workloads);
    let parallel = run_grid_threads(8, &sc, &kinds, &workloads);

    assert_eq!(serial.len(), workloads.len());
    for (row_s, row_p) in serial.iter().zip(&parallel) {
        assert_eq!(row_s.len(), kinds.len());
        for ((eval_s, snap_s), (eval_p, snap_p)) in row_s.iter().zip(row_p) {
            assert_eq!(
                eval_s,
                eval_p,
                "evaluation differs between thread counts: {} on {}",
                eval_s.prefetcher,
                eval_s.workload.trace_name()
            );
            assert_eq!(
                canonical(snap_s),
                canonical(snap_p),
                "telemetry snapshot differs between thread counts: {} on {}",
                eval_s.prefetcher,
                eval_s.workload.trace_name()
            );
        }
    }
}

#[test]
fn canonical_report_json_is_byte_identical_across_thread_counts() {
    let sc = Scenario::with_loads(3_000);
    let kinds = [PrefetcherKind::NoPrefetch, PrefetcherKind::NextLine];
    let workloads = [Workload::Sphinx, Workload::Nutch];

    let a = report::run_threads(1, &sc, &kinds, &workloads);
    let b = report::run_threads(8, &sc, &kinds, &workloads);

    assert_eq!(a.canonical().to_json(), b.canonical().to_json());
    assert_eq!(a.canonical().to_markdown(), b.canonical().to_markdown());
    // The canonical form only touches timer durations: row-level results
    // are bit-identical even without canonicalization.
    for (ra, rb) in a.rows.iter().zip(&b.rows) {
        assert_eq!(ra.workload, rb.workload);
        assert_eq!(ra.prefetcher, rb.prefetcher);
        assert_eq!(ra.ipc.to_bits(), rb.ipc.to_bits());
        assert_eq!(ra.requested, rb.requested);
        assert_eq!(ra.sim_issued, rb.sim_issued);
        assert_eq!(ra.telemetry_issued, rb.telemetry_issued);
    }
}

#[test]
fn parallel_map_is_order_preserving_and_bounded() {
    // The pool must preserve input order regardless of scheduling, and a
    // degenerate pool of 1 must equal any larger pool.
    let items: Vec<u64> = (0..64).collect();
    let f = |&i: &u64| i.wrapping_mul(0x9E37_79B9_7F4A_7C15).rotate_left(17);
    let one = engine::parallel_map_threads(1, &items, f);
    for pool in [2, 8, 32] {
        assert_eq!(engine::parallel_map_threads(pool, &items, f), one);
    }
}
