//! # pathfinder-suite
//!
//! Facade crate for the PATHFINDER (ASPLOS 2024) reproduction. Re-exports
//! every workspace crate under one roof so the `examples/` and `tests/`
//! directories — and downstream users who want the whole system — need a
//! single dependency.
//!
//! * [`accel`] — shared SIMD capability probe / kernel-tier dispatch
//! * [`sim`] — trace-driven memory-hierarchy simulator (ChampSim substitute)
//! * [`traces`] — synthetic Table 5 workload generators
//! * [`snn`] — LIF/STDP spiking-network engine
//! * [`nn`] — small LSTM library for the neural baselines
//! * [`prefetch`] — the `Prefetcher` trait and all baselines
//! * [`core`] — PATHFINDER itself
//! * [`serve`] — prefetch-as-a-service daemon (sharded stream serving)
//! * [`hw`] — area/power model
//! * [`harness`] — experiment runners for every paper table/figure
//! * [`telemetry`] — zero-cost counters/timers and run-report snapshots
//!
//! ```
//! use pathfinder_suite::core::{PathfinderConfig, PathfinderPrefetcher};
//! use pathfinder_suite::prefetch::{generate_prefetches, Prefetcher};
//! use pathfinder_suite::traces::Workload;
//!
//! let trace = Workload::Cc5.generate(2_000, 1);
//! let mut pf = PathfinderPrefetcher::new(PathfinderConfig::default())?;
//! let schedule = generate_prefetches(&mut pf, &trace, 2);
//! assert!(schedule.len() <= 2 * trace.len());
//! # Ok::<(), String>(())
//! ```

pub use pathfinder_accel as accel;
pub use pathfinder_core as core;
pub use pathfinder_harness as harness;
pub use pathfinder_hw as hw;
pub use pathfinder_nn as nn;
pub use pathfinder_prefetch as prefetch;
pub use pathfinder_serve as serve;
pub use pathfinder_sim as sim;
pub use pathfinder_snn as snn;
pub use pathfinder_telemetry as telemetry;
pub use pathfinder_traces as traces;
