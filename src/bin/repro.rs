//! Workspace-root `repro` shim so `cargo run --release --bin repro` works
//! without `-p pathfinder-harness`. See [`pathfinder_harness::cli`] for the
//! experiment list and flags.

use std::process::ExitCode;

fn main() -> ExitCode {
    pathfinder_suite::harness::cli::main()
}
